"""Run-batched extraction: bit-parity with the per-run path + edge cases.

The batched path hstacks equal-length runs into one ``(T, B*M)`` panel and
runs preprocessing + extraction once per group. Every test here pins the
contract that batching is *invisible* in the output bytes: mixed-length
corpora, single-run groups, constant/sd=0 columns, the error contracts,
counter-mask alignment, and both worker backends at n_jobs ∈ {1, 2, 4}.
"""

import numpy as np
import pytest

from repro.features.mvts import extract_mvts
from repro.features.pipeline import (
    FeatureExtractor,
    batched_feature_rows,
    preprocess_run,
)
from repro.features.tsfresh_lite import extract_tsfresh
from repro.telemetry.catalog import build_catalog
from repro.telemetry.collector import RunRecord
from repro.telemetry.corpus import (
    DEFAULT_MAX_PANEL_ELEMS,
    RunCorpus,
    plan_length_groups,
)

_EXTRACT = {"mvts": extract_mvts, "tsfresh": extract_tsfresh}


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(n_cores=1, n_nics=1, n_extra_cray=2)


def _mixed_records(catalog, lengths, seed=0, missing_rate=0.02):
    """Synthetic runs of the given raw lengths sharing one catalog."""
    rng = np.random.default_rng(seed)
    M = len(catalog.names)
    records = []
    for i, T in enumerate(lengths):
        data = rng.normal(loc=5.0, scale=2.0, size=(T, M))
        # counters must accumulate so differencing yields sane rates
        data[:, catalog.counter_mask] = np.abs(
            data[:, catalog.counter_mask]
        ).cumsum(axis=0)
        if missing_rate:
            data[rng.random(size=data.shape) < missing_rate] = np.nan
        records.append(
            RunRecord(
                app="CG" if i % 2 else "BT",
                input_deck=i % 3,
                node_count=4,
                node_id=i,
                anomaly=None if i % 2 else "membw",
                intensity=0.0 if i % 2 else 1.0,
                data=data,
                metric_names=list(catalog.names),
            )
        )
    return records


def _per_run_reference(corpus, counter_mask, method):
    """The historical path: one preprocess + extract call per run."""
    extract = _EXTRACT[method]
    return np.vstack([
        extract(preprocess_run(corpus.run_data(i), counter_mask))
        for i in range(len(corpus))
    ])


class TestPlanner:
    def test_groups_partition_all_runs(self):
        lengths = np.array([64, 96, 64, 128, 96, 64])
        groups = plan_length_groups(lengths, n_metrics=10)
        seen = np.sort(np.concatenate(groups))
        assert np.array_equal(seen, np.arange(len(lengths)))
        for idx in groups:
            assert len(np.unique(lengths[idx])) == 1  # one T per panel

    def test_ordering_is_deterministic(self):
        lengths = np.array([96, 64, 96, 64, 200])
        a = plan_length_groups(lengths, n_metrics=7)
        b = plan_length_groups(lengths, n_metrics=7)
        assert len(a) == len(b)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga, gb)

    def test_max_panel_elems_splits_groups(self):
        lengths = np.full(10, 100)
        # each run is 100 * 5 = 500 elems; cap at 3 runs per panel
        groups = plan_length_groups(lengths, n_metrics=5, max_panel_elems=1500)
        assert [len(g) for g in groups] == [3, 3, 3, 1]

    def test_cap_smaller_than_one_run_degrades_to_per_run(self):
        lengths = np.full(4, 100)
        groups = plan_length_groups(lengths, n_metrics=5, max_panel_elems=10)
        assert [len(g) for g in groups] == [1, 1, 1, 1]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="n_metrics"):
            plan_length_groups(np.array([10]), n_metrics=0)
        with pytest.raises(ValueError, match="max_panel_elems"):
            plan_length_groups(np.array([10]), n_metrics=3, max_panel_elems=0)

    def test_corpus_lengths_property(self, catalog):
        corpus = RunCorpus.from_records(
            _mixed_records(catalog, [64, 96, 64], seed=1)
        )
        assert np.array_equal(corpus.lengths, [64, 96, 64])


class TestBatchedBitParity:
    @pytest.mark.parametrize("method", ["mvts", "tsfresh"])
    def test_mixed_length_corpus(self, catalog, method):
        """Multiple T groups in one corpus: batched == per-run, bitwise."""
        lengths = [64, 96, 64, 128, 96, 64, 128, 64]
        corpus = RunCorpus.from_records(_mixed_records(catalog, lengths))
        ref = _per_run_reference(corpus, catalog.counter_mask, method)
        batched = batched_feature_rows(
            corpus.buffer, corpus.offsets, catalog.counter_mask,
            (0.08, 0.06), method,
        )
        assert np.array_equal(ref, batched)

    @pytest.mark.parametrize("method", ["mvts", "tsfresh"])
    def test_single_run_groups(self, catalog, method):
        """All-distinct lengths: every panel holds exactly one run."""
        corpus = RunCorpus.from_records(
            _mixed_records(catalog, [64, 80, 96, 112], seed=2)
        )
        ref = _per_run_reference(corpus, catalog.counter_mask, method)
        batched = batched_feature_rows(
            corpus.buffer, corpus.offsets, catalog.counter_mask,
            (0.08, 0.06), method,
        )
        assert np.array_equal(ref, batched)

    @pytest.mark.parametrize("method", ["mvts", "tsfresh"])
    def test_panel_splitting_does_not_move_bits(self, catalog, method):
        """A tiny max_panel_elems forces many small panels — same bytes."""
        corpus = RunCorpus.from_records(
            _mixed_records(catalog, [64] * 6 + [96] * 3, seed=3)
        )
        whole = batched_feature_rows(
            corpus.buffer, corpus.offsets, catalog.counter_mask,
            (0.08, 0.06), method, max_panel_elems=DEFAULT_MAX_PANEL_ELEMS,
        )
        split = batched_feature_rows(
            corpus.buffer, corpus.offsets, catalog.counter_mask,
            (0.08, 0.06), method, max_panel_elems=64 * len(catalog.names) * 2,
        )
        assert np.array_equal(whole, split)

    @pytest.mark.parametrize("method", ["mvts", "tsfresh"])
    def test_constant_and_all_nan_columns(self, catalog, method):
        """sd=0 guards (skew, ApEn, variation coefficient …) survive
        batching: a constant column in one run must not pick up scale
        from its panel neighbors."""
        records = _mixed_records(catalog, [64, 64, 96], seed=4, missing_rate=0)
        records[0].data[:, 3] = 7.5          # constant column
        records[1].data[:, 5] = np.nan       # all-NaN column -> interpolated to 0
        corpus = RunCorpus.from_records(records)
        ref = _per_run_reference(corpus, catalog.counter_mask, method)
        batched = batched_feature_rows(
            corpus.buffer, corpus.offsets, catalog.counter_mask,
            (0.08, 0.06), method,
        )
        assert np.array_equal(ref, batched)

    def test_counter_mask_alignment_after_trim(self, catalog):
        """Each run's counters are differenced against its *own* columns:
        give every run a distinct accumulation rate and check the rate
        comes back per run after batched trim + diff."""
        M = len(catalog.names)
        counters = np.flatnonzero(catalog.counter_mask)
        records = []
        for i, T in enumerate([64, 64, 64, 96]):
            data = np.full((T, M), 3.0)
            data[:, counters] = float(i + 1) * np.arange(T)[:, None]
            records.append(
                RunRecord(
                    app="CG", input_deck=0, node_count=1, node_id=i,
                    anomaly=None, intensity=0.0, data=data,
                    metric_names=list(catalog.names),
                )
            )
        corpus = RunCorpus.from_records(records)
        rows = batched_feature_rows(
            corpus.buffer, corpus.offsets, catalog.counter_mask,
            (0.08, 0.06), "mvts",
        )
        n_feats = len(rows[0]) // M
        for i in range(len(records)):
            per_metric = rows[i].reshape(M, n_feats)
            # feature 0 is the mean; a rate-k counter differences to k
            assert np.allclose(per_metric[counters, 0], float(i + 1))
            gauges = ~catalog.counter_mask
            assert np.allclose(per_metric[gauges, 0], 3.0)


class TestErrorContracts:
    def test_too_short_run_raises_like_per_run_path(self, catalog):
        records = _mixed_records(catalog, [64, 7], seed=5)  # 7 < 8 post-trim
        corpus = RunCorpus.from_records(records)
        with pytest.raises(ValueError, match="too short"):
            _per_run_reference(corpus, catalog.counter_mask, "mvts")
        with pytest.raises(ValueError, match="too short"):
            batched_feature_rows(
                corpus.buffer, corpus.offsets, catalog.counter_mask,
                (0.08, 0.06), "mvts",
            )

    @pytest.mark.parametrize("extract", [extract_mvts, extract_tsfresh])
    def test_nan_contract_on_panels(self, extract):
        panel = np.ones((32, 6))
        panel[4, 2] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            extract(panel)

    def test_tsfresh_min_length_contract_on_panels(self):
        with pytest.raises(ValueError, match="at least 8"):
            extract_tsfresh(np.ones((7, 4)))


class TestEntryPoints:
    @pytest.mark.parametrize("method", ["mvts", "tsfresh"])
    def test_record_list_equals_corpus(self, catalog, method):
        """Satellite: the map_fn-less record-list path routes through the
        batched corpus path — both entry points, identical matrices."""
        records = _mixed_records(catalog, [64, 96, 64, 80], seed=6)
        corpus = RunCorpus.from_records(records)
        a = FeatureExtractor(catalog, method=method).fit_transform(records)
        b = FeatureExtractor(catalog, method=method).fit_transform(corpus)
        assert np.array_equal(a.X, b.X)
        assert a.feature_names == b.feature_names
        assert np.array_equal(a.labels, b.labels)

    def test_record_list_equals_legacy_map_fn_path(self, catalog):
        """The per-run map_fn hook and the batched default agree bitwise."""
        records = _mixed_records(catalog, [64, 96, 64], seed=7)
        batched = FeatureExtractor(catalog, method="mvts").fit_transform(records)
        legacy = FeatureExtractor(catalog, method="mvts", map_fn=map).fit_transform(
            records
        )
        assert np.array_equal(batched.X, legacy.X)

    def test_transform_reuses_batched_path(self, catalog):
        records = _mixed_records(catalog, [64, 96, 64, 96], seed=8)
        fe = FeatureExtractor(catalog, method="mvts")
        fe.fit_transform(records[:2])
        a = fe.transform(records[2:])
        b = fe.transform(RunCorpus.from_records(records[2:]))
        assert np.array_equal(a.X, b.X)

    def test_heterogeneous_record_list_falls_back_per_run(self, catalog):
        """Records disagreeing on metric names cannot pack — the per-run
        fallback keeps the historical behavior instead of erroring."""
        records = _mixed_records(catalog, [64, 64], seed=9)
        renamed = list(records[1].metric_names)
        renamed[0] = "rogue_metric"
        records[1] = RunRecord(
            app=records[1].app, input_deck=records[1].input_deck,
            node_count=records[1].node_count, node_id=records[1].node_id,
            anomaly=records[1].anomaly, intensity=records[1].intensity,
            data=records[1].data, metric_names=renamed,
        )
        ds = FeatureExtractor(catalog, method="mvts").fit_transform(records)
        assert ds.X.shape[0] == 2


class TestParallelParity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_n_jobs_bitwise_identical(self, catalog, backend):
        """Acceptance pin: mixed-length corpus, n_jobs ∈ {1, 2, 4}, both
        backends — not a single bit moves, and no shm segment leaks."""
        from repro.parallel import active_segments

        before = set(active_segments())
        corpus = RunCorpus.from_records(
            _mixed_records(catalog, [64, 96, 64, 128, 96, 64, 80, 64], seed=10)
        )
        serial = FeatureExtractor(catalog, method="mvts", n_jobs=1).fit_transform(
            corpus
        )
        for n_jobs in (2, 4):
            parallel = FeatureExtractor(
                catalog, method="mvts", n_jobs=n_jobs, backend=backend
            ).fit_transform(corpus)
            assert np.array_equal(serial.X, parallel.X)
            assert serial.feature_names == parallel.feature_names
        assert set(active_segments()) == before
