"""Exact-equality regressions for the vectorized feature kernels.

Each vectorized rewrite (whole-matrix interpolation, sort-based unique
counts, blocked approximate entropy) is checked bitwise against the
straightforward per-column implementation it replaced — the rewrites are
pure speedups, not numerical approximations.
"""

import numpy as np
import pytest

from repro.features.pipeline import interpolate_missing
from repro.features.tsfresh_lite import (
    TSFRESH_FEATURE_NAMES,
    _approx_entropy_column,
    _approx_entropy_matrix,
    extract_tsfresh,
)


def _legacy_interpolate(data: np.ndarray) -> np.ndarray:
    """The historical per-column np.interp loop (reference semantics)."""
    data = np.asarray(data, dtype=np.float64).copy()
    T = data.shape[0]
    t = np.arange(T)
    for j in range(data.shape[1]):
        col = data[:, j]
        bad = np.isnan(col)
        if not bad.any():
            continue
        good = ~bad
        if not good.any():
            data[:, j] = 0.0
            continue
        data[bad, j] = np.interp(t[bad], t[good], col[good])
    return data


def _nan_matrix(rng, T, M, rate):
    data = rng.normal(scale=10.0 ** float(rng.integers(-3, 4)), size=(T, M))
    data[rng.random(size=(T, M)) < rate] = np.nan
    return data


class TestInterpolateMissing:
    @pytest.mark.parametrize("rate", [0.0, 0.05, 0.3, 0.7])
    def test_bitwise_equal_to_legacy(self, rate):
        rng = np.random.default_rng(int(rate * 100))
        for trial in range(20):
            data = _nan_matrix(rng, int(rng.integers(8, 60)),
                               int(rng.integers(1, 12)), rate)
            got = interpolate_missing(data)
            want = _legacy_interpolate(data)
            assert np.array_equal(got, want)  # bitwise, no tolerance

    def test_edge_nans_take_nearest(self):
        data = np.array([[np.nan], [2.0], [np.nan], [6.0], [np.nan]])
        out = interpolate_missing(data)
        assert np.array_equal(out[:, 0], [2.0, 2.0, 4.0, 6.0, 6.0])

    def test_all_nan_column_zeroed(self):
        data = np.full((5, 2), np.nan)
        data[:, 0] = 1.0
        out = interpolate_missing(data)
        assert np.array_equal(out[:, 1], np.zeros(5))
        assert np.array_equal(out[:, 0], np.ones(5))

    def test_input_not_mutated(self):
        data = np.array([[1.0, np.nan], [np.nan, 2.0], [3.0, 4.0]])
        snapshot = data.copy()
        interpolate_missing(data)
        assert np.array_equal(data, snapshot, equal_nan=True)


class TestApproxEntropyMatrix:
    def test_matches_per_column_reference(self):
        rng = np.random.default_rng(0)
        for T in (10, 40, 130, 200):
            X = rng.normal(size=(T, 9))
            X[:, 0] = 3.14  # constant column: sd ~ 0 guard
            got = _approx_entropy_matrix(X)
            want = np.array(
                [_approx_entropy_column(X[:, j]) for j in range(X.shape[1])]
            )
            assert np.array_equal(got, want)  # bitwise, no tolerance

    def test_blocking_is_invisible(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(64, 17))
        full = _approx_entropy_matrix(X)
        tiny_blocks = _approx_entropy_matrix(X, block_elems=64)
        assert np.array_equal(full, tiny_blocks)

    def test_short_series_zero(self):
        X = np.ones((3, 4))
        assert np.array_equal(_approx_entropy_matrix(X), np.zeros(4))


class TestUniqueCountFeatures:
    def test_matches_python_set_semantics(self):
        rng = np.random.default_rng(2)
        X = np.round(rng.normal(size=(50, 6)), 1)  # force duplicates
        X[:, 5] = 7.0
        feats = extract_tsfresh(X)
        per_metric = feats.reshape(X.shape[1], len(TSFRESH_FEATURE_NAMES))
        i_unique = TSFRESH_FEATURE_NAMES.index("ratio_unique_values")
        i_reocc = TSFRESH_FEATURE_NAMES.index("pct_reoccurring_points")
        T = X.shape[0]
        for j in range(X.shape[1]):
            n_unique = len(set(X[:, j].tolist()))
            assert per_metric[j, i_unique] == n_unique / T
            assert per_metric[j, i_reocc] == 1.0 - n_unique / T
