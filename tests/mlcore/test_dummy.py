"""Tests for the dummy baseline classifiers."""

import numpy as np
import pytest

from repro.mlcore.dummy import MajorityClassifier, StratifiedRandomClassifier


@pytest.fixture()
def skewed():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(100, 3))
    y = np.array(["healthy"] * 80 + ["membw"] * 20)
    return X, y


class TestMajority:
    def test_predicts_majority(self, skewed):
        X, y = skewed
        clf = MajorityClassifier().fit(X, y)
        assert np.all(clf.predict(X) == "healthy")

    def test_proba_matches_frequencies(self, skewed):
        X, y = skewed
        proba = MajorityClassifier().fit(X, y).predict_proba(X[:3])
        healthy_col = list(np.unique(y)).index("healthy")
        assert proba[0, healthy_col] == pytest.approx(0.8)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_accuracy_looks_good_macro_f1_does_not(self, skewed):
        """The reason the paper reports macro F1, in one test."""
        from repro.mlcore.metrics import f1_score

        X, y = skewed
        clf = MajorityClassifier().fit(X, y)
        pred = clf.predict(X)
        assert np.mean(pred == y) == pytest.approx(0.8)  # accuracy flatters
        assert f1_score(y, pred) < 0.5  # macro F1 exposes it


class TestStratifiedRandom:
    def test_draws_follow_distribution(self, skewed):
        X, y = skewed
        clf = StratifiedRandomClassifier(random_state=0).fit(X, y)
        big_X = np.zeros((5000, 3))
        pred = clf.predict(big_X)
        assert np.mean(pred == "healthy") == pytest.approx(0.8, abs=0.03)

    def test_reproducible(self, skewed):
        X, y = skewed
        a = StratifiedRandomClassifier(random_state=7).fit(X, y).predict(X)
        b = StratifiedRandomClassifier(random_state=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_real_model_beats_dummies(self, blobs):
        """Any real experiment should clear this sanity floor."""
        from repro.mlcore.forest import RandomForestClassifier
        from repro.mlcore.metrics import f1_score

        X, y = blobs
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        dummy = StratifiedRandomClassifier(random_state=0).fit(X, y)
        assert f1_score(y, rf.predict(X)) > f1_score(y, dummy.predict(X)) + 0.3
