"""Tests for calibration diagnostics and temperature scaling."""

import numpy as np
import pytest

from repro.mlcore.calibration import (
    TemperatureScaler,
    expected_calibration_error,
    reliability_curve,
)
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.linear import LogisticRegression

CLASSES = np.array([0, 1])


def _perfectly_calibrated(n=4000, seed=0):
    """Predictions whose confidence equals their accuracy by construction."""
    rng = np.random.default_rng(seed)
    p1 = rng.uniform(0.5, 1.0, size=n)
    proba = np.column_stack([1 - p1, p1])
    # true label is 1 with probability p1 -> confidence matches accuracy
    y = (rng.random(n) < p1).astype(int)
    return proba, y


class TestReliabilityCurve:
    def test_bins_cover_all_samples(self):
        proba, y = _perfectly_calibrated()
        conf, acc, count = reliability_curve(proba, y, CLASSES, n_bins=10)
        assert count.sum() == len(y)

    def test_calibrated_model_on_diagonal(self):
        proba, y = _perfectly_calibrated()
        conf, acc, count = reliability_curve(proba, y, CLASSES, n_bins=8)
        filled = count > 100
        assert np.all(np.abs(conf[filled] - acc[filled]) < 0.07)

    def test_invalid_rows_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            reliability_curve(np.array([[0.9, 0.9]]), np.array([0]), CLASSES)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            reliability_curve(np.array([[0.5, 0.5]]), np.array([0, 1]), CLASSES)

    def test_n_bins_validated(self):
        proba, y = _perfectly_calibrated(100)
        with pytest.raises(ValueError, match="n_bins"):
            reliability_curve(proba, y, CLASSES, n_bins=1)

    def test_full_confidence_lands_in_last_bin(self):
        proba = np.array([[0.0, 1.0]])
        conf, acc, count = reliability_curve(proba, np.array([1]), CLASSES, n_bins=5)
        assert count[-1] == 1


class TestECE:
    def test_calibrated_is_near_zero(self):
        proba, y = _perfectly_calibrated()
        assert expected_calibration_error(proba, y, CLASSES) < 0.03

    def test_overconfident_is_large(self):
        rng = np.random.default_rng(1)
        n = 2000
        y = rng.integers(0, 2, size=n)
        # claims 99% confidence but is right only half the time
        proba = np.tile([0.01, 0.99], (n, 1))
        assert expected_calibration_error(proba, y, CLASSES) > 0.4

    def test_bounded(self):
        proba, y = _perfectly_calibrated(500, seed=3)
        ece = expected_calibration_error(proba, y, CLASSES)
        assert 0.0 <= ece <= 1.0


class TestTemperatureScaler:
    @pytest.fixture(scope="class")
    def overconfident(self):
        """A deep forest on noisy data: overconfident on held-out samples."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(600, 4))
        y = ((X[:, 0] + rng.normal(scale=1.5, size=600)) > 0).astype(int)
        model = RandomForestClassifier(
            n_estimators=5, max_depth=None, random_state=0
        ).fit(X[:300], y[:300])
        return model, X[300:], y[300:]

    def test_requires_fitted_base(self):
        with pytest.raises(ValueError, match="fitted base model"):
            TemperatureScaler(LogisticRegression()).fit(np.ones((10, 2)), np.zeros(10))

    def test_predict_before_fit(self, overconfident):
        model, X, y = overconfident
        with pytest.raises(RuntimeError, match="fit"):
            TemperatureScaler(model).predict_proba(X)

    def test_unseen_class_rejected(self, overconfident):
        model, X, y = overconfident
        with pytest.raises(ValueError, match="never saw"):
            TemperatureScaler(model).fit(X, np.full(len(y), 7))

    def test_reduces_ece_of_overconfident_model(self, overconfident):
        model, X, y = overconfident
        scaler = TemperatureScaler(model).fit(X[:150], y[:150])
        raw_ece = expected_calibration_error(
            model.predict_proba(X[150:]), y[150:], model.classes_
        )
        cal_ece = expected_calibration_error(
            scaler.predict_proba(X[150:]), y[150:], model.classes_
        )
        assert cal_ece <= raw_ece + 0.01
        assert scaler.temperature_ > 1.0  # softening, as expected

    def test_argmax_preserved(self, overconfident):
        model, X, y = overconfident
        scaler = TemperatureScaler(model).fit(X, y)
        assert np.array_equal(scaler.predict(X), model.predict(X))
        raw = np.argmax(model.predict_proba(X), axis=1)
        cal = np.argmax(scaler.predict_proba(X), axis=1)
        assert np.array_equal(raw, cal)

    def test_rows_still_stochastic(self, overconfident):
        model, X, y = overconfident
        scaler = TemperatureScaler(model).fit(X, y)
        proba = scaler.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
