"""Tests for the Proctor autoencoder substrate."""

import numpy as np
import pytest

from repro.mlcore.autoencoder import Autoencoder


def _correlated_data(n=200, seed=0):
    """Data living near a 3-D subspace of a 20-D ambient space."""
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n, 3))
    basis = rng.normal(size=(3, 20))
    X = latent @ basis + 0.05 * rng.normal(size=(n, 20))
    # normalize to [0,1]-ish as the pipeline would
    X = (X - X.min(0)) / (X.max(0) - X.min(0))
    return X


class TestTraining:
    def test_loss_decreases(self):
        X = _correlated_data()
        ae = Autoencoder(code_size=3, hidden_layer_sizes=(16,), max_iter=40, random_state=0).fit(X)
        assert ae.loss_curve_[-1] < ae.loss_curve_[0]

    def test_reconstruction_beats_mean_baseline(self):
        X = _correlated_data()
        ae = Autoencoder(code_size=3, hidden_layer_sizes=(16,), max_iter=80, random_state=0).fit(X)
        ae_err = float(np.mean((ae.reconstruct(X) - X) ** 2))
        mean_err = float(np.mean((X.mean(axis=0) - X) ** 2))
        assert ae_err < mean_err

    def test_invalid_code_size(self):
        with pytest.raises(ValueError, match="code_size"):
            Autoencoder(code_size=0).fit(_correlated_data(20))

    def test_y_is_ignored(self):
        X = _correlated_data(50)
        Autoencoder(code_size=2, max_iter=3, random_state=0).fit(X, y=np.arange(50))


class TestTransform:
    def test_code_shape(self):
        X = _correlated_data()
        ae = Autoencoder(code_size=5, hidden_layer_sizes=(16,), max_iter=5, random_state=0).fit(X)
        assert ae.transform(X).shape == (len(X), 5)

    def test_feature_mismatch(self):
        X = _correlated_data(40)
        ae = Autoencoder(code_size=2, max_iter=3, random_state=0).fit(X)
        with pytest.raises(ValueError, match="features"):
            ae.transform(np.ones((3, 7)))

    def test_no_hidden_layers(self):
        X = _correlated_data(60)
        ae = Autoencoder(code_size=3, hidden_layer_sizes=(), max_iter=20, random_state=0).fit(X)
        assert ae.transform(X).shape == (60, 3)


class TestAnomalyScore:
    def test_outliers_have_higher_reconstruction_error(self):
        X = _correlated_data(300)
        ae = Autoencoder(code_size=3, hidden_layer_sizes=(24,), max_iter=100, random_state=0).fit(X)
        rng = np.random.default_rng(1)
        outliers = rng.uniform(0, 1, size=(50, X.shape[1]))
        assert ae.reconstruction_error(outliers).mean() > ae.reconstruction_error(X).mean()


class TestDeterminism:
    def test_same_seed_same_codes(self):
        X = _correlated_data(80)
        c1 = Autoencoder(code_size=3, max_iter=10, random_state=5).fit(X).transform(X)
        c2 = Autoencoder(code_size=3, max_iter=10, random_state=5).fit(X).transform(X)
        assert np.array_equal(c1, c2)
