"""Tests for the random forest classifier."""

import numpy as np
import pytest

from repro.mlcore.forest import RandomForestClassifier


class TestFit:
    def test_learns_blobs(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert rf.score(X, y) > 0.97

    def test_n_estimators_respected(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(rf.estimators_) == 7

    def test_invalid_n_estimators(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestClassifier(n_estimators=0).fit(X, y)

    def test_string_labels(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (30, 4)), rng.normal(5, 1, (30, 4))])
        y = np.array(["healthy"] * 30 + ["membw"] * 30)
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert set(rf.predict(X)) <= {"healthy", "membw"}
        assert rf.score(X, y) == 1.0

    def test_no_bootstrap_mode(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        assert rf.score(X, y) > 0.97


class TestProba:
    def test_rows_sum_to_one(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        proba = rf.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert proba.shape == (len(y), 4)

    def test_columns_follow_classes_order(self, blobs):
        X, y = blobs
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        proba = rf.predict_proba(X[:20])
        hard = rf.classes_[np.argmax(proba, axis=1)]
        assert np.array_equal(hard, rf.predict(X[:20]))

    def test_probabilities_softer_than_single_tree(self, blobs):
        """Averaging makes the ensemble's confidence less extreme on average."""
        X, y = blobs
        rng = np.random.default_rng(1)
        Xn = X + rng.normal(scale=2.0, size=X.shape)  # heavy overlap
        one = RandomForestClassifier(n_estimators=1, random_state=0).fit(Xn, y)
        many = RandomForestClassifier(n_estimators=40, random_state=0).fit(Xn, y)
        assert many.predict_proba(Xn).max(axis=1).mean() < one.predict_proba(
            Xn
        ).max(axis=1).mean()


class TestDeterminism:
    def test_same_seed_same_predictions(self, blobs):
        X, y = blobs
        p1 = RandomForestClassifier(n_estimators=8, random_state=3).fit(X, y).predict_proba(X)
        p2 = RandomForestClassifier(n_estimators=8, random_state=3).fit(X, y).predict_proba(X)
        assert np.array_equal(p1, p2)

    def test_different_seed_different_forest(self, blobs):
        X, y = blobs
        p1 = RandomForestClassifier(n_estimators=8, random_state=1).fit(X, y).predict_proba(X)
        p2 = RandomForestClassifier(n_estimators=8, random_state=2).fit(X, y).predict_proba(X)
        assert not np.array_equal(p1, p2)


class TestHyperparameters:
    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    def test_table4_criteria(self, blobs, criterion):
        X, y = blobs
        rf = RandomForestClassifier(
            n_estimators=8, criterion=criterion, random_state=0
        ).fit(X, y)
        assert rf.score(X, y) > 0.9

    @pytest.mark.parametrize("max_depth", [None, 4, 8])
    def test_table4_depths(self, blobs, max_depth):
        X, y = blobs
        rf = RandomForestClassifier(
            n_estimators=8, max_depth=max_depth, random_state=0
        ).fit(X, y)
        assert rf.score(X, y) > 0.85

    def test_rare_class_keeps_probability_mass(self):
        """Bootstrap retry keeps minority classes present in most trees."""
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 0.5, (95, 3)), rng.normal(6, 0.5, (5, 3))])
        y = np.array([0] * 95 + [1] * 5)
        rf = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        minority_proba = rf.predict_proba(X[95:])[:, 1]
        assert minority_proba.mean() > 0.5
