"""Cross-cutting property-based tests for the ML stack.

Invariants that must hold for *any* input, not just the fixtures: these
are the contracts the active-learning loop and the grid search rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.gbm import LGBMClassifier
from repro.mlcore.linear import LogisticRegression
from repro.mlcore.model_selection import StratifiedKFold, train_test_split
from repro.mlcore.preprocessing import MinMaxScaler
from repro.mlcore.tree import DecisionTreeClassifier


@st.composite
def dataset(draw, max_n=80, max_m=6, max_k=4):
    n = draw(st.integers(10, max_n))
    m = draw(st.integers(1, max_m))
    k = draw(st.integers(2, max_k))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, m))
    y = rng.integers(0, k, size=n)
    # guarantee at least 2 classes appear
    y[0], y[1] = 0, 1
    return X, y


class TestProbabilityContracts:
    @given(data=dataset())
    @settings(max_examples=20, deadline=None)
    def test_forest_proba_contract(self, data):
        X, y = data
        model = RandomForestClassifier(n_estimators=4, max_depth=4, random_state=0)
        proba = model.fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), len(model.classes_))
        assert np.all(proba >= -1e-12)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    @given(data=dataset(max_n=50))
    @settings(max_examples=12, deadline=None)
    def test_gbm_proba_contract(self, data):
        X, y = data
        model = LGBMClassifier(n_estimators=3, num_leaves=4, random_state=0)
        proba = model.fit(X, y).predict_proba(X)
        assert np.all(proba > 0)
        assert np.allclose(proba.sum(axis=1), 1.0)

    @given(data=dataset(max_n=60))
    @settings(max_examples=15, deadline=None)
    def test_predict_is_argmax_of_proba(self, data):
        X, y = data
        model = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert np.array_equal(
            model.predict(X), model.classes_[np.argmax(proba, axis=1)]
        )


class TestSplitContracts:
    @given(data=dataset(max_n=80))
    @settings(max_examples=20, deadline=None)
    def test_train_test_split_partitions(self, data):
        X, y = data
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.3, random_state=0)
        assert len(Xtr) + len(Xte) == len(X)
        assert len(ytr) == len(Xtr) and len(yte) == len(Xte)
        # multiset of labels is preserved
        assert sorted(np.concatenate([ytr, yte])) == sorted(y)

    @given(data=dataset(max_n=80), n_splits=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_kfold_covers_each_sample_once(self, data, n_splits):
        X, y = data
        seen = np.zeros(len(y), dtype=int)
        for train_idx, test_idx in StratifiedKFold(
            n_splits=n_splits, random_state=0
        ).split(X, y):
            seen[test_idx] += 1
            assert len(np.intersect1d(train_idx, test_idx)) == 0
        assert np.all(seen == 1)


class TestScalerContracts:
    @given(data=dataset(max_n=60))
    @settings(max_examples=20, deadline=None)
    def test_transform_inverse_roundtrip(self, data):
        X, _ = data
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)

    @given(data=dataset(max_n=60), shift=st.floats(-100, 100))
    @settings(max_examples=20, deadline=None)
    def test_scaling_is_shift_invariant_in_output(self, data, shift):
        X, _ = data
        a = MinMaxScaler().fit_transform(X)
        b = MinMaxScaler().fit_transform(X + shift)
        assert np.allclose(a, b, atol=1e-7)


class TestModelDeterminismContracts:
    @given(data=dataset(max_n=50), seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_model(self, data, seed):
        X, y = data
        a = RandomForestClassifier(n_estimators=3, random_state=seed).fit(X, y)
        b = RandomForestClassifier(n_estimators=3, random_state=seed).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))

    @given(data=dataset(max_n=60))
    @settings(max_examples=10, deadline=None)
    def test_logistic_regression_deterministic(self, data):
        X, y = data
        a = LogisticRegression(max_iter=50).fit(X, y)
        b = LogisticRegression(max_iter=50).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)
