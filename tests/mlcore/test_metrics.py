"""Tests for the paper's metrics: macro F1, false alarm rate, anomaly miss rate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore.metrics import (
    accuracy_score,
    anomaly_miss_rate,
    classification_report,
    confusion_matrix,
    f1_score,
    false_alarm_rate,
    precision_recall_f1,
    precision_score,
    recall_score,
)

LABELS = ["healthy", "membw", "dial"]


class TestConfusionMatrix:
    def test_diagonal_on_perfect_prediction(self):
        y = np.array(["a", "b", "a", "c"])
        cm, labels = confusion_matrix(y, y)
        assert np.array_equal(cm, np.diag([2, 1, 1]))

    def test_rows_are_truth(self):
        y_true = np.array(["a", "a"])
        y_pred = np.array(["b", "b"])
        cm, labels = confusion_matrix(y_true, y_pred)
        assert cm[0, 1] == 2 and cm[1, 0] == 0

    def test_explicit_label_order(self):
        y = np.array(["b", "a"])
        cm, labels = confusion_matrix(y, y, labels=np.array(["b", "a"]))
        assert list(labels) == ["b", "a"]

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            confusion_matrix(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array(["a"]), np.array(["a", "b"]))


class TestF1:
    def test_perfect_is_one(self):
        y = np.array(["a", "b", "c"])
        assert f1_score(y, y) == 1.0

    def test_worst_is_zero(self):
        y_true = np.array(["a", "a"])
        y_pred = np.array(["b", "b"])
        assert f1_score(y_true, y_pred) == 0.0

    def test_hand_computed_macro(self):
        # class a: tp=1 fp=1 fn=1 -> P=R=0.5 -> F1=0.5; class b symmetric
        y_true = np.array(["a", "a", "b", "b"])
        y_pred = np.array(["a", "b", "b", "a"])
        assert np.isclose(f1_score(y_true, y_pred), 0.5)

    def test_weighted_average(self):
        y_true = np.array(["a"] * 9 + ["b"])
        y_pred = np.array(["a"] * 9 + ["a"])
        macro = f1_score(y_true, y_pred, average="macro")
        weighted = f1_score(y_true, y_pred, average="weighted")
        assert weighted > macro  # the dominant class is predicted well

    def test_per_class_vector(self):
        y = np.array(["a", "b"])
        per_class = f1_score(y, y, average=None)
        assert np.array_equal(per_class, np.ones(2))

    def test_unknown_average(self):
        y = np.array(["a", "b"])
        with pytest.raises(ValueError, match="average"):
            f1_score(y, y, average="micro-ish")

    def test_class_absent_from_predictions_counts_zero(self):
        y_true = np.array(["a", "b", "c"])
        y_pred = np.array(["a", "a", "a"])
        per_class = f1_score(y_true, y_pred, average=None)
        assert per_class[1] == 0.0 and per_class[2] == 0.0


class TestPrecisionRecall:
    def test_precision_recall_hand_example(self):
        y_true = np.array(["a", "a", "b", "b", "b"])
        y_pred = np.array(["a", "b", "b", "b", "a"])
        precision, recall, f1, labels = precision_recall_f1(y_true, y_pred)
        # class a: tp=1, predicted=2 -> P=0.5; actual=2 -> R=0.5
        assert np.isclose(precision[0], 0.5) and np.isclose(recall[0], 0.5)
        # class b: tp=2, predicted=3 -> P=2/3; actual=3 -> R=2/3
        assert np.isclose(precision[1], 2 / 3) and np.isclose(recall[1], 2 / 3)

    def test_macro_wrappers(self):
        y_true = np.array(["a", "b"])
        assert precision_score(y_true, y_true) == 1.0
        assert recall_score(y_true, y_true) == 1.0

    def test_accuracy(self):
        assert accuracy_score(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(2 / 3)


class TestFalseAlarmRate:
    def test_zero_when_all_healthy_correct(self):
        y_true = np.array(["healthy", "healthy", "membw"])
        y_pred = np.array(["healthy", "healthy", "healthy"])
        assert false_alarm_rate(y_true, y_pred) == 0.0

    def test_counts_healthy_misclassified_as_any_anomaly(self):
        y_true = np.array(["healthy", "healthy", "healthy", "healthy"])
        y_pred = np.array(["membw", "dial", "healthy", "healthy"])
        assert false_alarm_rate(y_true, y_pred) == 0.5

    def test_no_healthy_samples_gives_zero(self):
        y_true = np.array(["membw", "dial"])
        y_pred = np.array(["healthy", "healthy"])
        assert false_alarm_rate(y_true, y_pred) == 0.0

    def test_custom_healthy_label(self):
        y_true = np.array([0, 0, 1])
        y_pred = np.array([1, 0, 1])
        assert false_alarm_rate(y_true, y_pred, healthy_label=0) == 0.5


class TestAnomalyMissRate:
    def test_counts_anomalous_predicted_healthy(self):
        y_true = np.array(["membw", "dial", "membw", "healthy"])
        y_pred = np.array(["healthy", "dial", "membw", "healthy"])
        assert anomaly_miss_rate(y_true, y_pred) == pytest.approx(1 / 3)

    def test_cross_anomaly_confusion_is_not_a_miss(self):
        y_true = np.array(["membw", "dial"])
        y_pred = np.array(["dial", "membw"])
        assert anomaly_miss_rate(y_true, y_pred) == 0.0

    def test_no_anomalies_gives_zero(self):
        y_true = np.array(["healthy", "healthy"])
        y_pred = np.array(["membw", "healthy"])
        assert anomaly_miss_rate(y_true, y_pred) == 0.0


class TestReport:
    def test_report_contains_all_classes(self):
        y_true = np.array(["healthy", "membw", "dial"])
        report = classification_report(y_true, y_true)
        for cls in ("healthy", "membw", "dial", "macro"):
            assert cls in report


class TestProperties:
    @given(
        n=st.integers(2, 60),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_f1_bounded_and_symmetric_cases(self, n, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.choice(LABELS, size=n)
        y_pred = rng.choice(LABELS, size=n)
        score = f1_score(y_true, y_pred)
        assert 0.0 <= score <= 1.0
        assert f1_score(y_true, y_true) == 1.0

    @given(n=st.integers(2, 60), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_far_amr_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.choice(LABELS, size=n)
        y_pred = rng.choice(LABELS, size=n)
        assert 0.0 <= false_alarm_rate(y_true, y_pred) <= 1.0
        assert 0.0 <= anomaly_miss_rate(y_true, y_pred) <= 1.0

    @given(n=st.integers(2, 60), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_confusion_matrix_total_equals_n(self, n, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.choice(LABELS, size=n)
        y_pred = rng.choice(LABELS, size=n)
        cm, _ = confusion_matrix(y_true, y_pred)
        assert cm.sum() == n
