"""Tests for the estimator protocol and validation helpers."""

import numpy as np
import pytest

from repro.mlcore.base import (
    BaseEstimator,
    check_array,
    check_random_state,
    check_X_y,
    clone,
    encode_labels,
)


class _Toy(BaseEstimator):
    def __init__(self, alpha=1.0, layers=(3, 3)):
        self.alpha = alpha
        self.layers = layers


class TestParams:
    def test_get_params_returns_constructor_args(self):
        assert _Toy(alpha=2.5).get_params() == {"alpha": 2.5, "layers": (3, 3)}

    def test_set_params_roundtrip(self):
        toy = _Toy().set_params(alpha=9.0)
        assert toy.alpha == 9.0

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            _Toy().set_params(gamma=1)

    def test_repr_contains_params(self):
        assert "alpha=1.0" in repr(_Toy())


class TestClone:
    def test_clone_copies_hyperparameters(self):
        a = _Toy(alpha=3.0)
        b = clone(a)
        assert b.alpha == 3.0 and b is not a

    def test_clone_deep_copies_mutable_params(self):
        a = _Toy(layers=[5, 5])
        b = clone(a)
        b.layers.append(7)
        assert a.layers == [5, 5]

    def test_clone_drops_fitted_state(self):
        a = _Toy()
        a.coef_ = np.ones(3)
        assert not hasattr(clone(a), "coef_")


class TestCheckArray:
    def test_accepts_lists(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64 and out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_array(np.ones(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            check_array(np.empty((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[np.nan, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[np.inf, 1.0]])


class TestCheckXy:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="samples"):
            check_X_y(np.ones((3, 2)), np.ones(4))

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-D"):
            check_X_y(np.ones((3, 2)), np.ones((3, 1)))


class TestRandomState:
    def test_seed_reproducible(self):
        assert check_random_state(5).random() == check_random_state(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)


class TestEncodeLabels:
    def test_string_labels(self):
        classes, codes = encode_labels(np.array(["b", "a", "b"]))
        assert list(classes) == ["a", "b"]
        assert list(codes) == [1, 0, 1]

    def test_codes_index_classes(self):
        y = np.array([10, 30, 20, 30])
        classes, codes = encode_labels(y)
        assert np.array_equal(classes[codes], y)
