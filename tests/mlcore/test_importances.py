"""Tests for impurity-based feature importances (tree + forest)."""

import numpy as np
import pytest

from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.tree import DecisionTreeClassifier


def _one_informative(n=300, m=8, seed=0):
    """Only feature 2 carries label information."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, m))
    y = (X[:, 2] > 0).astype(int)
    return X, y


class TestTreeImportances:
    def test_informative_feature_dominates(self):
        X, y = _one_informative()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2
        assert tree.feature_importances_[2] > 0.8

    def test_normalized_to_one(self):
        X, y = _one_informative()
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)
        assert np.all(tree.feature_importances_ >= 0)

    def test_stump_has_zero_importances(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        tree = DecisionTreeClassifier(max_depth=0).fit(X, np.zeros(10))
        assert np.all(tree.feature_importances_ == 0)

    def test_two_features_share_importance(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 4))
        y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        imp = tree.feature_importances_
        assert imp[0] > 0.1 and imp[1] > 0.1
        assert imp[0] + imp[1] > 0.9


class TestForestImportances:
    def test_informative_feature_dominates(self):
        X, y = _one_informative()
        rf = RandomForestClassifier(
            n_estimators=20, max_depth=4, random_state=0
        ).fit(X, y)
        assert np.argmax(rf.feature_importances_) == 2

    def test_sum_near_one(self):
        X, y = _one_informative()
        rf = RandomForestClassifier(
            n_estimators=10, max_depth=4, random_state=0
        ).fit(X, y)
        assert rf.feature_importances_.sum() == pytest.approx(1.0, abs=1e-6)

    def test_subsampled_trees_spread_importance_more(self):
        """Feature subsampling forces correlated stand-ins to share credit."""
        rng = np.random.default_rng(2)
        base = rng.normal(size=300)
        X = np.column_stack([base + 0.01 * rng.normal(size=300) for _ in range(4)])
        y = (base > 0).astype(int)
        full = RandomForestClassifier(
            n_estimators=20, max_features=None, random_state=0
        ).fit(X, y)
        sub = RandomForestClassifier(
            n_estimators=20, max_features=1, random_state=0
        ).fit(X, y)
        # entropy of the importance distribution is higher with subsampling
        def entropy(p):
            p = p[p > 0]
            return -np.sum(p * np.log(p))
        assert entropy(sub.feature_importances_) >= entropy(full.feature_importances_)
