"""Tests for chi-square scoring and SelectKBest."""

import numpy as np
import pytest

from repro.mlcore.feature_selection import SelectKBest, chi2_scores


def _informative_data(n=200, seed=0):
    """Feature 0 strongly depends on the label, features 1-4 are noise."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=n)
    X = rng.uniform(0, 1, size=(n, 5))
    X[:, 0] = y * 0.9 + rng.uniform(0, 0.1, size=n)
    return X, y


class TestChi2:
    def test_informative_feature_scores_highest(self):
        X, y = _informative_data()
        scores = chi2_scores(X, y)
        assert np.argmax(scores) == 0

    def test_rejects_negative_features(self):
        X, y = _informative_data()
        X[0, 1] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            chi2_scores(X, y)

    def test_constant_zero_feature_scores_zero(self):
        X, y = _informative_data()
        X[:, 2] = 0.0
        assert chi2_scores(X, y)[2] == 0.0

    def test_matches_textbook_two_by_two(self):
        """Binary feature/label contingency: compare to hand-computed chi2."""
        # 30 samples: class 0 mostly feature off, class 1 mostly feature on
        y = np.array([0] * 15 + [1] * 15)
        x = np.array([1.0] * 3 + [0.0] * 12 + [1.0] * 12 + [0.0] * 3)
        X = x.reshape(-1, 1)
        # observed sums per class: [3, 12]; expected: [7.5, 7.5]
        expected_chi2 = (3 - 7.5) ** 2 / 7.5 + (12 - 7.5) ** 2 / 7.5
        assert np.isclose(chi2_scores(X, y)[0], expected_chi2)

    def test_scale_invariance_in_ranking(self):
        X, y = _informative_data()
        s1 = chi2_scores(X, y)
        s2 = chi2_scores(X * 10.0, y)
        assert np.array_equal(np.argsort(s1), np.argsort(s2))


class TestSelectKBest:
    def test_keeps_top_k(self):
        X, y = _informative_data()
        sel = SelectKBest(k=1).fit(X, y)
        assert list(sel.get_support()) == [0]

    def test_transform_shape(self):
        X, y = _informative_data()
        out = SelectKBest(k=3).fit_transform(X, y)
        assert out.shape == (len(y), 3)

    def test_k_clipped_to_available(self):
        X, y = _informative_data()
        sel = SelectKBest(k=999).fit(X, y)
        assert len(sel.get_support()) == X.shape[1]

    def test_invalid_k(self):
        X, y = _informative_data()
        with pytest.raises(ValueError, match="k must be"):
            SelectKBest(k=0).fit(X, y)

    def test_support_is_sorted(self):
        X, y = _informative_data()
        support = SelectKBest(k=4).fit(X, y).get_support()
        assert np.array_equal(support, np.sort(support))

    def test_transform_feature_mismatch(self):
        X, y = _informative_data()
        sel = SelectKBest(k=2).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            sel.transform(np.ones((2, 9)))

    def test_selected_columns_match_source(self):
        X, y = _informative_data()
        sel = SelectKBest(k=2).fit(X, y)
        out = sel.transform(X)
        assert np.array_equal(out, X[:, sel.get_support()])

    def test_custom_score_func(self):
        X, y = _informative_data()
        variance_score = lambda X, y: X.var(axis=0)
        sel = SelectKBest(k=1, score_func=variance_score).fit(X, y)
        assert list(sel.get_support()) == [int(np.argmax(X.var(axis=0)))]
