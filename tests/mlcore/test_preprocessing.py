"""Tests for MinMaxScaler and LabelEncoder, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mlcore.preprocessing import LabelEncoder, MinMaxScaler


class TestMinMaxScaler:
    def test_train_data_maps_to_unit_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(scale=50, size=(40, 6))
        out = MinMaxScaler().fit_transform(X)
        assert np.allclose(out.min(axis=0), 0.0)
        assert np.allclose(out.max(axis=0), 1.0)

    def test_custom_range(self):
        X = np.array([[0.0], [10.0]])
        out = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        assert np.allclose(out.ravel(), [-1.0, 1.0])

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="increasing"):
            MinMaxScaler(feature_range=(1, 1)).fit(np.ones((3, 1)))

    def test_constant_feature_maps_to_range_min(self):
        X = np.full((5, 2), 7.0)
        out = MinMaxScaler().fit_transform(X)
        assert np.allclose(out, 0.0)

    def test_test_data_can_exceed_range_without_clip(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        assert scaler.transform(np.array([[2.0]]))[0, 0] == 2.0

    def test_clip_mode(self):
        scaler = MinMaxScaler(clip=True).fit(np.array([[0.0], [1.0]]))
        assert scaler.transform(np.array([[5.0]]))[0, 0] == 1.0
        assert scaler.transform(np.array([[-5.0]]))[0, 0] == 0.0

    def test_feature_count_mismatch(self):
        scaler = MinMaxScaler().fit(np.ones((4, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.ones((2, 5)))

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(30, 4))
        scaler = MinMaxScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(back, X)

    def test_inverse_transform_constant_feature(self):
        X = np.hstack([np.full((5, 1), 3.0), np.arange(5.0).reshape(-1, 1)])
        scaler = MinMaxScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(back, X)

    @given(
        X=hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 20), st.integers(1, 6)),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_output_always_within_range_on_train(self, X):
        out = MinMaxScaler().fit_transform(X)
        assert np.all(out >= -1e-9) and np.all(out <= 1 + 1e-9)


class TestLabelEncoder:
    def test_roundtrip(self):
        y = np.array(["membw", "healthy", "dial", "healthy"])
        enc = LabelEncoder().fit(y)
        codes = enc.transform(y)
        assert np.array_equal(enc.inverse_transform(codes), y)

    def test_codes_are_sorted_class_indices(self):
        enc = LabelEncoder().fit(np.array(["b", "a", "c"]))
        assert list(enc.classes_) == ["a", "b", "c"]
        assert list(enc.transform(np.array(["c", "a"]))) == [2, 0]

    def test_unseen_label_raises(self):
        enc = LabelEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(np.array(["z"]))

    def test_out_of_range_code_raises(self):
        enc = LabelEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValueError, match="out of range"):
            enc.inverse_transform(np.array([5]))

    def test_fit_transform_shortcut(self):
        y = np.array([3, 1, 2, 1])
        assert list(LabelEncoder().fit_transform(y)) == [2, 0, 1, 0]
