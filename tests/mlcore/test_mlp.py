"""Tests for the MLP classifier."""

import numpy as np
import pytest

from repro.mlcore.mlp import MLPClassifier


class TestFit:
    def test_learns_blobs(self, blobs):
        X, y = blobs
        clf = MLPClassifier(
            hidden_layer_sizes=(32,), max_iter=150, random_state=0
        ).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_learns_xor(self):
        """A nonlinear problem a linear model cannot solve."""
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        clf = MLPClassifier(
            hidden_layer_sizes=(32, 32), max_iter=300, random_state=0,
            learning_rate_init=5e-3,
        ).fit(X, y)
        assert clf.score(X, y) > 0.9

    @pytest.mark.parametrize(
        "hidden", [(10, 10, 10), (50, 100, 50), (100,)]
    )
    def test_table4_architectures(self, blobs, hidden):
        X, y = blobs
        clf = MLPClassifier(
            hidden_layer_sizes=hidden, max_iter=60, random_state=0
        ).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_loss_decreases(self, blobs):
        X, y = blobs
        clf = MLPClassifier(
            hidden_layer_sizes=(16,), max_iter=40, random_state=0
        ).fit(X, y)
        assert clf.loss_curve_[-1] < clf.loss_curve_[0]

    def test_early_stopping_caps_epochs(self, blobs):
        X, y = blobs
        clf = MLPClassifier(
            hidden_layer_sizes=(16,), max_iter=500, tol=10.0,
            n_iter_no_change=3, random_state=0,
        ).fit(X, y)
        # an absurd tol means no epoch ever "improves": stop after patience
        assert clf.n_iter_ <= 10

    def test_invalid_hidden_sizes(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="hidden"):
            MLPClassifier(hidden_layer_sizes=(0,)).fit(X, y)


class TestRegularization:
    def test_alpha_shrinks_weights(self, blobs):
        X, y = blobs
        loose = MLPClassifier(hidden_layer_sizes=(16,), alpha=0.0, max_iter=50, random_state=0).fit(X, y)
        tight = MLPClassifier(hidden_layer_sizes=(16,), alpha=1.0, max_iter=50, random_state=0).fit(X, y)
        norm = lambda m: sum(float(np.linalg.norm(W)) for W in m.weights_)
        assert norm(tight) < norm(loose)


class TestProba:
    def test_rows_sum_to_one(self, blobs):
        X, y = blobs
        clf = MLPClassifier(hidden_layer_sizes=(16,), max_iter=30, random_state=0).fit(X, y)
        proba = clf.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_feature_mismatch_raises(self, blobs):
        X, y = blobs
        clf = MLPClassifier(hidden_layer_sizes=(8,), max_iter=10, random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            clf.predict_proba(np.ones((2, 3)))

    def test_string_labels(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.5, (40, 3)), rng.normal(2, 0.5, (40, 3))])
        y = np.array(["healthy"] * 40 + ["memleak"] * 40)
        clf = MLPClassifier(hidden_layer_sizes=(8,), max_iter=60, random_state=0).fit(X, y)
        assert clf.score(X, y) == 1.0


class TestDeterminism:
    def test_same_seed_same_weights(self, blobs):
        X, y = blobs
        m1 = MLPClassifier(hidden_layer_sizes=(8,), max_iter=15, random_state=9).fit(X, y)
        m2 = MLPClassifier(hidden_layer_sizes=(8,), max_iter=15, random_state=9).fit(X, y)
        for W1, W2 in zip(m1.weights_, m2.weights_):
            assert np.array_equal(W1, W2)
