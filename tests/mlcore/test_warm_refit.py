"""Tests for warm-start forest refits (RandomForestClassifier.refit).

The contract under test:

* ``refresh_fraction=1.0`` is **bit-identical** to a from-scratch
  ``fit_binned`` of a fresh clone (same integer seed) on the stacked
  data — the exact parity oracle that anchors every partial refit;
* the replacement schedule is deterministic and independent of
  ``n_jobs`` (it derives from the per-tree seed stream, not live RNG);
* a warm forest pickles and keeps refitting identically after a
  roundtrip;
* new classes appearing in ``y_new`` widen the forest consistently.
"""

import pickle

import numpy as np
import pytest

from repro.mlcore.binning import BinnedDataset, Binner
from repro.mlcore.forest import RandomForestClassifier, RefitReport


def _problem(seed=0, n=220, f=12):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, f))
    y = (X[:, 0] + X[:, 1] > 0).astype(int) + (X[:, 2] > 1.1)
    Xq = rng.normal(size=(60, f))
    return X, y, Xq


def _hist_rf(**kw):
    kw.setdefault("n_estimators", 8)
    kw.setdefault("max_depth", 6)
    kw.setdefault("splitter", "hist")
    kw.setdefault("random_state", 3)
    return RandomForestClassifier(**kw)


class TestFullRefreshParity:
    def test_bit_identical_to_from_scratch_fit(self):
        X, y, Xq = _problem()
        warm = _hist_rf().fit(X[:180], y[:180])
        report = warm.refit(X[180:], y[180:], refresh_fraction=1.0)
        assert np.array_equal(report.replaced, np.arange(warm.n_estimators))
        assert report.touched_leaves == []

        # fresh clone, same integer seed, fit on the stacked dataset: the
        # per-tree seed streams replay exactly
        cold = _hist_rf()
        grown = warm.binned_dataset_
        cold.fit_binned(
            BinnedDataset(np.ascontiguousarray(grown.codes), grown.binner), y
        )
        for tw, tc in zip(warm.estimators_, cold.estimators_):
            assert np.array_equal(tw.tree_feature_, tc.tree_feature_)
            assert np.array_equal(tw.tree_threshold_, tc.tree_threshold_)
            assert np.array_equal(tw.tree_value_, tc.tree_value_)
        pw, pc = warm.predict_proba(Xq), cold.predict_proba(Xq)
        assert pw.tobytes() == pc.tobytes()

    def test_parity_survives_many_single_row_refits(self):
        X, y, Xq = _problem()
        warm = _hist_rf().fit(X[:200], y[:200])
        for i in range(200, 210):
            warm.refit(X[i], y[i], refresh_fraction=1.0)
        cold = _hist_rf()
        grown = warm.binned_dataset_
        cold.fit_binned(
            BinnedDataset(np.ascontiguousarray(grown.codes), grown.binner),
            y[:210],
        )
        assert warm.predict_proba(Xq).tobytes() == cold.predict_proba(Xq).tobytes()


class TestReplacementSchedule:
    def test_deterministic_across_n_jobs(self):
        X, y, Xq = _problem()
        results = {}
        for n_jobs in (1, 2, 4):
            rf = _hist_rf(n_estimators=10, n_jobs=n_jobs).fit(X[:180], y[:180])
            r1 = rf.refit(X[180:200], y[180:200], refresh_fraction=0.3)
            r2 = rf.refit(X[200:], y[200:], refresh_fraction=0.3)
            results[n_jobs] = (r1.replaced, r2.replaced, rf.predict_proba(Xq))
        for n_jobs in (2, 4):
            assert np.array_equal(results[1][0], results[n_jobs][0])
            assert np.array_equal(results[1][1], results[n_jobs][1])
            assert results[1][2].tobytes() == results[n_jobs][2].tobytes()

    def test_schedule_varies_across_rounds(self):
        X, y, _ = _problem()
        rf = _hist_rf(n_estimators=20).fit(X[:180], y[:180])
        drawn = [
            rf.refit(X[180 + i], y[180 + i], refresh_fraction=0.2).replaced
            for i in range(6)
        ]
        # the per-round schedules must not be one frozen subset: over a few
        # rounds the replacement set cycles through the forest
        assert len({tuple(d) for d in drawn}) > 1
        assert len(np.unique(np.concatenate(drawn))) > len(drawn[0])

    def test_partial_refresh_counts(self):
        X, y, _ = _problem()
        rf = _hist_rf(n_estimators=10).fit(X[:200], y[:200])
        report = rf.refit(X[200:], y[200:], refresh_fraction=0.3)
        assert len(report.replaced) == 3  # ceil(0.3 * 10)
        kept = [t for t, _ in report.touched_leaves]
        assert sorted(kept + list(report.replaced)) == list(range(10))
        assert isinstance(report, RefitReport)
        assert report.n_new_rows == 20

    def test_kept_trees_absorb_rows(self):
        X, y, _ = _problem()
        rf = _hist_rf(n_estimators=6).fit(X[:200], y[:200])
        before = [t.tree_count_.sum() for t in rf.estimators_]
        report = rf.refit(X[200:], y[200:], refresh_fraction=0.2)
        n_new = 20
        for t, leaves in report.touched_leaves:
            assert len(leaves) > 0
            # every new row lands in exactly one leaf of every kept tree
            assert rf.estimators_[t].tree_count_.sum() == before[t] + n_new


class TestPickleRoundtrip:
    def test_warm_forest_pickles_and_keeps_refitting(self):
        X, y, Xq = _problem()
        rf = _hist_rf().fit(X[:180], y[:180])
        rf.refit(X[180:200], y[180:200], refresh_fraction=0.5)
        clone = pickle.loads(pickle.dumps(rf))
        assert rf.predict_proba(Xq).tobytes() == clone.predict_proba(Xq).tobytes()
        ra = rf.refit(X[200:], y[200:], refresh_fraction=0.5)
        rb = clone.refit(X[200:], y[200:], refresh_fraction=0.5)
        assert np.array_equal(ra.replaced, rb.replaced)
        assert rf.predict_proba(Xq).tobytes() == clone.predict_proba(Xq).tobytes()


class TestClassGrowth:
    def test_new_class_in_y_new(self):
        X, y, Xq = _problem()
        rf = _hist_rf().fit(X[:200], y[:200])
        y_new = np.full(10, 7)
        report = rf.refit(X[200:210], y_new, refresh_fraction=0.4)
        assert report.classes_changed
        assert 7 in rf.classes_
        proba = rf.predict_proba(Xq)
        assert proba.shape == (len(Xq), len(rf.classes_))
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestErrors:
    def test_refit_requires_binned_fit(self):
        X, y, _ = _problem()
        rf = RandomForestClassifier(n_estimators=3, random_state=0)
        rf.fit(X[:100], y[:100])  # exact splitter: no binned dataset
        with pytest.raises(RuntimeError, match="fit_binned"):
            rf.refit(X[100:105], y[100:105])

    def test_refit_before_fit(self):
        X, y, _ = _problem()
        with pytest.raises(RuntimeError, match="fit"):
            _hist_rf().refit(X[:5], y[:5])

    def test_bad_refresh_fraction(self):
        X, y, _ = _problem()
        rf = _hist_rf().fit(X[:100], y[:100])
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="refresh_fraction"):
                rf.refit(X[100:105], y[100:105], refresh_fraction=bad)

    def test_feature_mismatch(self):
        X, y, _ = _problem()
        rf = _hist_rf().fit(X[:100], y[:100])
        with pytest.raises(ValueError, match="features"):
            rf.refit(X[100:105, :5], y[100:105])

    def test_length_mismatch(self):
        X, y, _ = _problem()
        rf = _hist_rf().fit(X[:100], y[:100])
        with pytest.raises(ValueError, match="labels"):
            rf.refit(X[100:105], y[100:103])


class TestCachedCodesPath:
    def test_precomputed_codes_match_transform(self):
        X, y, Xq = _problem()
        binner = Binner(64)
        codes = binner.fit_transform(X)
        a = _hist_rf(max_bins=64)
        a.fit_binned(BinnedDataset(codes[:200].copy(), binner), y[:200])
        b = _hist_rf(max_bins=64)
        b.fit_binned(BinnedDataset(codes[:200].copy(), binner), y[:200])
        ra = a.refit(X[200:], y[200:], refresh_fraction=0.5, codes=codes[200:])
        rb = b.refit(X[200:], y[200:], refresh_fraction=0.5)
        assert np.array_equal(ra.replaced, rb.replaced)
        assert a.predict_proba(Xq).tobytes() == b.predict_proba(Xq).tobytes()
