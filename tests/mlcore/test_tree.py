"""Tests for the CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore.tree import DecisionTreeClassifier


def _xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestFitBasics:
    def test_perfectly_separable_is_memorized(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_xor_needs_depth_two(self):
        X, y = _xor_data()
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert deep.score(X, y) > shallow.score(X, y)
        assert deep.score(X, y) > 0.95

    def test_single_class_gives_stump(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        tree = DecisionTreeClassifier().fit(X, np.zeros(10))
        assert tree.node_count_ == 1
        assert np.all(tree.predict(X) == 0)

    def test_max_depth_zero_is_majority_vote(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert tree.node_count_ == 1
        counts = np.bincount(y)
        assert np.all(tree.predict(X) == np.argmax(counts))

    def test_depth_respects_bound(self):
        X, y = _xor_data(400)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth_ <= 3

    def test_min_samples_leaf(self):
        X, y = _xor_data(100)
        tree = DecisionTreeClassifier(min_samples_leaf=20).fit(X, y)
        leaves = tree.tree_feature_ == -1
        # every leaf frequency row was computed from >= 20 samples; check
        # by pushing training data through and counting occupancy
        leaf_ids = tree._leaf_indices(X)
        _, counts = np.unique(leaf_ids, return_counts=True)
        assert counts.min() >= 20
        assert leaves.sum() == len(counts)

    def test_min_samples_split(self):
        X, y = _xor_data(64)
        tree = DecisionTreeClassifier(min_samples_split=65).fit(X, y)
        assert tree.node_count_ == 1

    def test_string_labels_roundtrip(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["healthy", "healthy", "membw", "membw"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) == {"healthy", "membw"}


class TestDepthProperty:
    @staticmethod
    def _depth_loop(tree) -> int:
        """The historical O(node_count) reference implementation."""
        depth = np.zeros(tree.node_count_, dtype=np.int64)
        for i in range(tree.node_count_):
            if tree.tree_feature_[i] != -1:
                depth[tree.tree_left_[i]] = depth[i] + 1
                depth[tree.tree_right_[i]] = depth[i] + 1
        return int(depth.max()) if tree.node_count_ else 0

    def test_level_sweep_matches_loop_on_grown_tree(self):
        X, y = _xor_data(400)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count_ > 3  # actually grew
        assert tree.depth_ == self._depth_loop(tree)

    @pytest.mark.parametrize("max_depth", [0, 1, 3, 7, None])
    def test_level_sweep_matches_loop_across_depths(self, max_depth):
        X, y = _xor_data(300, seed=3)
        tree = DecisionTreeClassifier(max_depth=max_depth).fit(X, y)
        assert tree.depth_ == self._depth_loop(tree)

    def test_stump_depth_zero(self):
        X = np.random.default_rng(1).normal(size=(12, 2))
        tree = DecisionTreeClassifier().fit(X, np.zeros(12))
        assert tree.depth_ == 0 == self._depth_loop(tree)

    def test_hist_splitter_parity(self):
        X, y = _xor_data(256, seed=5)
        tree = DecisionTreeClassifier(splitter="hist").fit(X, y)
        assert tree.depth_ == self._depth_loop(tree)


class TestCriteria:
    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    def test_both_criteria_learn(self, criterion):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(criterion=criterion, max_depth=5).fit(X, y)
        assert tree.score(X, y) > 0.9


class TestProba:
    def test_rows_sum_to_one(self):
        X, y = _xor_data()
        proba = DecisionTreeClassifier(max_depth=3).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pure_leaves_give_hard_probabilities(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        proba = DecisionTreeClassifier().fit(X, y).predict_proba(X)
        assert np.allclose(proba.max(axis=1), 1.0)

    def test_feature_count_mismatch_raises(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            tree.predict_proba(np.ones((2, 5)))


class TestFeatureSubsampling:
    def test_max_features_sqrt_still_learns(self):
        X, y = _xor_data(400)
        tree = DecisionTreeClassifier(
            max_features="sqrt", max_depth=8, random_state=0
        ).fit(X, y)
        assert tree.score(X, y) > 0.8

    def test_invalid_max_features(self):
        X, y = _xor_data()
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=1.5).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features="bogus").fit(X, y)

    def test_int_and_float_max_features(self):
        X, y = _xor_data()
        for mf in (1, 0.5, "log2", None):
            DecisionTreeClassifier(max_features=mf, random_state=0).fit(X, y)


class TestDeterminism:
    def test_same_seed_same_tree(self):
        X, y = _xor_data(300, seed=3)
        t1 = DecisionTreeClassifier(max_features="sqrt", random_state=11).fit(X, y)
        t2 = DecisionTreeClassifier(max_features="sqrt", random_state=11).fit(X, y)
        assert np.array_equal(t1.tree_feature_, t2.tree_feature_)
        assert np.allclose(t1.tree_threshold_, t2.tree_threshold_)


class TestPropertyBased:
    @given(
        n=st.integers(min_value=8, max_value=60),
        m=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_training_accuracy_is_perfect_without_limits(self, n, m, seed):
        """An unconstrained tree memorizes any dataset with distinct rows."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, m))
        # ensure rows are distinct so memorization is possible
        X[:, 0] += np.arange(n) * 1e-3
        y = rng.integers(0, 3, size=n)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_proba_rows_always_stochastic(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 3))
        y = rng.integers(0, 4, size=40)
        proba = DecisionTreeClassifier(max_depth=4).fit(X, y).predict_proba(X)
        assert np.all(proba >= 0)
        assert np.allclose(proba.sum(axis=1), 1.0)
