"""Tests for balanced accuracy and Matthews correlation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlcore.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    matthews_corrcoef,
)


class TestBalancedAccuracy:
    def test_perfect(self):
        y = np.array(["a", "b", "c"])
        assert balanced_accuracy_score(y, y) == 1.0

    def test_majority_vote_on_skewed_data(self):
        y_true = np.array(["healthy"] * 90 + ["membw"] * 10)
        y_pred = np.array(["healthy"] * 100)
        assert accuracy_score(y_true, y_pred) == pytest.approx(0.9)
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.5)

    def test_ignores_classes_absent_from_truth(self):
        y_true = np.array(["a", "a"])
        y_pred = np.array(["a", "b"])  # 'b' predicted but never true
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.5)

    def test_hand_computed_multiclass(self):
        y_true = np.array(["a", "a", "b", "b", "c", "c"])
        y_pred = np.array(["a", "a", "b", "a", "c", "b"])
        # recalls: a=1.0, b=0.5, c=0.5
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(2 / 3)


class TestMatthews:
    def test_perfect_is_one(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert matthews_corrcoef(y, y) == pytest.approx(1.0)

    def test_binary_matches_formula(self):
        y_true = np.array([1, 1, 1, 0, 0, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 0, 0, 0, 1, 0])
        tp, fn, fp, tn = 2, 1, 1, 4
        expected = (tp * tn - fp * fn) / np.sqrt(
            (tp + fp) * (tp + fn) * (tn + fp) * (tn + fn)
        )
        assert matthews_corrcoef(y_true, y_pred) == pytest.approx(expected)

    def test_constant_prediction_is_zero(self):
        y_true = np.array([0, 1, 0, 1])
        y_pred = np.array([0, 0, 0, 0])
        assert matthews_corrcoef(y_true, y_pred) == 0.0

    def test_anticorrelated_binary_is_negative(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([1, 1, 0, 0])
        assert matthews_corrcoef(y_true, y_pred) == pytest.approx(-1.0)

    @given(n=st.integers(4, 60), seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_bounded_in_minus_one_one(self, n, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 3, size=n)
        y_pred = rng.integers(0, 3, size=n)
        mcc = matthews_corrcoef(y_true, y_pred)
        assert -1.0 - 1e-9 <= mcc <= 1.0 + 1e-9

    @given(n=st.integers(4, 60), seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_random_predictions_near_zero_on_average(self, n, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, size=200)
        y_pred = rng.integers(0, 2, size=200)
        assert abs(matthews_corrcoef(y_true, y_pred)) < 0.35
