"""Exact-vs-binned parity and determinism suite.

Parity between ``splitter="exact"`` and ``splitter="hist"`` is only
guaranteed when every feature's distinct-value count fits inside
``max_bins`` — then the binner places an edge at *every* midpoint between
adjacent distinct values and both splitters see the same candidate set
(see docs/mlcore.md). The fixtures here construct exactly that regime.
"""

import numpy as np
import pytest

from repro.mlcore.binning import Binner
from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.gbm import LGBMClassifier
from repro.mlcore.tree import DecisionTreeClassifier


def _low_cardinality_problem(seed=0, n=300, f=8, levels=40):
    """Classification data whose per-feature cardinality is <= levels."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, levels, size=(n, f)).astype(float) / 7.0
    y = (X[:, 0] + X[:, 1] - X[:, 2] > X[:, 3]).astype(int) + (X[:, 4] > 3.0)
    return X, y


class TestTreeParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    @pytest.mark.parametrize("max_depth", [None, 6])
    def test_training_set_predictions_match(self, seed, criterion, max_depth):
        X, y = _low_cardinality_problem(seed)
        kw = dict(criterion=criterion, max_depth=max_depth, random_state=0)
        exact = DecisionTreeClassifier(splitter="exact", **kw).fit(X, y)
        hist = DecisionTreeClassifier(splitter="hist", max_bins=64, **kw).fit(X, y)
        assert np.array_equal(exact.predict(X), hist.predict(X))

    def test_importances_match(self):
        X, y = _low_cardinality_problem(3)
        exact = DecisionTreeClassifier(random_state=0).fit(X, y)
        hist = DecisionTreeClassifier(
            splitter="hist", max_bins=64, random_state=0
        ).fit(X, y)
        assert np.allclose(
            exact.feature_importances_, hist.feature_importances_, atol=1e-12
        )


class TestForestParity:
    def test_training_set_predictions_match(self):
        # deterministic trees only: feature subsampling consumes the tree
        # RNG in growth order (depth-first vs level-wise differ), and
        # bootstrap duplicates empty some bins so score-*tied* cuts can
        # resolve to a different feature. Without those two, the forest
        # pipeline (binning, shared codes, stacked predict) must agree
        # with exact bit-for-bit.
        X, y = _low_cardinality_problem(1)
        kw = dict(
            n_estimators=5,
            max_depth=8,
            max_features=None,
            bootstrap=False,
            random_state=7,
        )
        exact = RandomForestClassifier(splitter="exact", **kw).fit(X, y)
        hist = RandomForestClassifier(splitter="hist", max_bins=64, **kw).fit(X, y)
        assert np.allclose(exact.predict_proba(X), hist.predict_proba(X))

    def test_bootstrap_predictions_close(self):
        # with bootstrap on, ties may resolve differently (see above) but
        # the ensembles must still agree on almost every training sample
        X, y = _low_cardinality_problem(1)
        kw = dict(n_estimators=20, max_depth=8, random_state=7)
        exact = RandomForestClassifier(splitter="exact", **kw).fit(X, y)
        hist = RandomForestClassifier(splitter="hist", max_bins=64, **kw).fit(X, y)
        agree = (exact.predict(X) == hist.predict(X)).mean()
        assert agree >= 0.97

    def test_hist_accuracy_close_on_continuous_data(self):
        # continuous features exceed max_bins: parity no longer holds,
        # but quantization must not cost real accuracy
        rng = np.random.default_rng(5)
        X = rng.normal(size=(600, 10))
        y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
        tr, te = slice(0, 400), slice(400, None)
        kw = dict(n_estimators=30, max_depth=8, random_state=0)
        acc_e = RandomForestClassifier(**kw).fit(X[tr], y[tr]).score(X[te], y[te])
        acc_h = (
            RandomForestClassifier(splitter="hist", **kw)
            .fit(X[tr], y[tr])
            .score(X[te], y[te])
        )
        assert abs(acc_e - acc_h) < 0.05

    def test_fit_binned_equals_fit(self):
        X, y = _low_cardinality_problem(2)
        kw = dict(n_estimators=10, splitter="hist", max_bins=32, random_state=3)
        via_fit = RandomForestClassifier(**kw).fit(X, y)
        ds = Binner(32).fit_dataset(X)
        via_binned = RandomForestClassifier(**kw).fit_binned(ds, y)
        assert np.array_equal(via_fit.predict_proba(X), via_binned.predict_proba(X))

    def test_fit_binned_requires_hist(self):
        X, y = _low_cardinality_problem(0, n=60)
        ds = Binner(32).fit_dataset(X)
        with pytest.raises(ValueError, match="splitter='hist'"):
            RandomForestClassifier(splitter="exact").fit_binned(ds, y)


class TestForestDeterminism:
    @pytest.mark.parametrize("splitter", ["exact", "hist"])
    def test_bit_identical_across_n_jobs(self, splitter):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(200, 6))
        y = (X[:, 0] > 0).astype(int)
        probas = []
        for n_jobs in (1, 2, 4):
            m = RandomForestClassifier(
                n_estimators=8,
                max_depth=6,
                splitter=splitter,
                n_jobs=n_jobs,
                random_state=42,
            ).fit(X, y)
            probas.append(m.predict_proba(X))
        assert np.array_equal(probas[0], probas[1])
        assert np.array_equal(probas[0], probas[2])

    @pytest.mark.parametrize("splitter", ["exact", "hist"])
    def test_bit_identical_forced_process_backend(self, splitter):
        """The shared-memory transport must not move a single bit.

        ``backend="auto"`` may degrade to the serial path on a one-core
        box, so force the process backend: workers attach the code
        matrices (hist) or the raw feature matrix (exact) from
        ``/dev/shm`` and every segment must be gone afterwards.
        """
        from repro.parallel import active_segments

        before = set(active_segments())
        rng = np.random.default_rng(11)
        X = rng.normal(size=(200, 6))
        y = (X[:, 0] > 0).astype(int)
        probas = []
        for n_jobs in (1, 2, 4):
            m = RandomForestClassifier(
                n_estimators=8,
                max_depth=6,
                splitter=splitter,
                n_jobs=n_jobs,
                backend="process",
                random_state=42,
            ).fit(X, y)
            probas.append(m.predict_proba(X))
        assert np.array_equal(probas[0], probas[1])
        assert np.array_equal(probas[0], probas[2])
        assert set(active_segments()) == before

    def test_stacked_predict_matches_per_tree_average(self):
        rng = np.random.default_rng(12)
        X = rng.normal(size=(150, 5))
        y = rng.integers(0, 3, size=150)
        m = RandomForestClassifier(n_estimators=12, random_state=0).fit(X, y)
        manual = np.zeros((len(X), len(m.classes_)))
        for tree, cmap in zip(m.estimators_, m._tree_class_maps):
            manual[:, cmap] += tree.predict_proba(X)
        manual /= len(m.estimators_)
        assert np.allclose(m.predict_proba(X), manual, atol=1e-12)


class TestGBMParity:
    def test_decision_function_matches_on_low_cardinality(self):
        # both splitters see the same candidate thresholds here, but the
        # gain sums accumulate in different float orders, so gain ties can
        # resolve differently — scores agree to float noise, not bit-level
        X, y = _low_cardinality_problem(4, n=250, levels=30)
        kw = dict(n_estimators=8, num_leaves=15, random_state=0)
        exact = LGBMClassifier(splitter="exact", **kw).fit(X, y)
        hist = LGBMClassifier(splitter="hist", max_bins=64, **kw).fit(X, y)
        assert np.abs(
            exact.decision_function(X) - hist.decision_function(X)
        ).max() < 0.1
        agree = (exact.predict(X) == hist.predict(X)).mean()
        assert agree >= 0.98

    def test_bad_splitter_rejected(self):
        X, y = _low_cardinality_problem(0, n=60)
        with pytest.raises(ValueError, match="splitter"):
            LGBMClassifier(splitter="fast").fit(X, y)
