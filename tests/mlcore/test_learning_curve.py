"""Tests for the supervised learning-curve utility."""

import numpy as np
import pytest

from repro.mlcore.linear import LogisticRegression
from repro.mlcore.model_selection import learning_curve


@pytest.fixture(scope="module")
def noisy_problem():
    rng = np.random.default_rng(0)
    n = 600
    X = rng.normal(size=(n, 6))
    w = rng.normal(size=6)
    y = ((X @ w + rng.normal(scale=2.0, size=n)) > 0).astype(int)
    return X[:400], y[:400], X[400:], y[400:]


class TestLearningCurve:
    def test_shapes_and_sorted_sizes(self, noisy_problem):
        Xtr, ytr, Xte, yte = noisy_problem
        sizes, mean, std = learning_curve(
            LogisticRegression(), Xtr, ytr, Xte, yte,
            train_sizes=(100, 20, 50), random_state=0,
        )
        assert list(sizes) == [20, 50, 100]
        assert mean.shape == std.shape == (3,)

    def test_scores_improve_with_data(self, noisy_problem):
        Xtr, ytr, Xte, yte = noisy_problem
        sizes, mean, _ = learning_curve(
            LogisticRegression(), Xtr, ytr, Xte, yte,
            train_sizes=(10, 400), n_repeats=5, random_state=0,
        )
        assert mean[-1] >= mean[0]

    def test_sizes_clipped_to_available(self, noisy_problem):
        Xtr, ytr, Xte, yte = noisy_problem
        sizes, _, _ = learning_curve(
            LogisticRegression(), Xtr, ytr, Xte, yte,
            train_sizes=(100, 10_000), random_state=0,
        )
        assert sizes[-1] == len(ytr)

    def test_duplicate_sizes_merged(self, noisy_problem):
        Xtr, ytr, Xte, yte = noisy_problem
        sizes, _, _ = learning_curve(
            LogisticRegression(), Xtr, ytr, Xte, yte,
            train_sizes=(50, 50, 50), random_state=0,
        )
        assert list(sizes) == [50]

    def test_invalid_inputs(self, noisy_problem):
        Xtr, ytr, Xte, yte = noisy_problem
        with pytest.raises(ValueError, match="n_repeats"):
            learning_curve(
                LogisticRegression(), Xtr, ytr, Xte, yte,
                train_sizes=(50,), n_repeats=0,
            )
        with pytest.raises(ValueError, match="train_sizes"):
            learning_curve(
                LogisticRegression(), Xtr, ytr, Xte, yte, train_sizes=(1,),
            )

    def test_every_class_present_in_subsets(self):
        """Stratified subsetting keeps rare classes trainable."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        X[-10:] += 6.0
        y = np.array([0] * 190 + [1] * 10)
        # size 20 would lose class 1 entirely under uniform sampling ~35%
        # of the time; stratification must keep it
        sizes, mean, _ = learning_curve(
            LogisticRegression(), X, y, X, y,
            train_sizes=(20,), n_repeats=10, random_state=0,
        )
        # with class 1 present the model can separate it -> macro F1 > 0.6
        assert mean[0] > 0.6

    def test_reproducible(self, noisy_problem):
        Xtr, ytr, Xte, yte = noisy_problem
        a = learning_curve(
            LogisticRegression(), Xtr, ytr, Xte, yte,
            train_sizes=(40, 80), random_state=5,
        )
        b = learning_curve(
            LogisticRegression(), Xtr, ytr, Xte, yte,
            train_sizes=(40, 80), random_state=5,
        )
        assert np.array_equal(a[1], b[1])
