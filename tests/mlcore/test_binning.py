"""Tests for the histogram binning layer (repro.mlcore.binning)."""

import numpy as np
import pytest

from repro.mlcore.binning import (
    DEFAULT_MAX_BINS,
    BinnedDataset,
    Binner,
    _rank_cut_positions,
)


class TestRankCutPositions:
    def test_strictly_increasing_when_n_exceeds_bins(self):
        for n, b in [(257, 256), (1000, 256), (100, 64), (65, 64)]:
            cuts = _rank_cut_positions(n, b)
            assert len(cuts) == b - 1
            assert (np.diff(cuts) > 0).all()
            assert cuts[0] >= 1 and cuts[-1] <= n - 1

    def test_matches_quantile_ranks(self):
        # for a tie-free column, the legacy per-column quantile path and
        # the rank shortcut must choose the same neighbouring pairs
        rng = np.random.default_rng(0)
        col = np.sort(rng.normal(size=500))
        b = 64
        qs = np.linspace(0.0, 1.0, b + 1)[1:-1]
        legacy = np.clip(
            np.searchsorted(col, np.quantile(col, qs), side="right"), 1, len(col) - 1
        )
        assert np.array_equal(_rank_cut_positions(len(col), b), legacy)


class TestBinnerEdges:
    def test_low_cardinality_gets_all_midpoints(self):
        X = np.array([[0.0], [1.0], [1.0], [3.0], [7.0]])
        binner = Binner(max_bins=8).fit(X)
        assert np.allclose(binner.bin_edges_[0], [0.5, 2.0, 5.0])

    def test_edge_count_bounded(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 3))
        binner = Binner(max_bins=32).fit(X)
        for edges in binner.bin_edges_:
            assert len(edges) <= 31

    def test_edges_never_coincide_with_data(self):
        rng = np.random.default_rng(2)
        X = np.round(rng.normal(size=(300, 4)), 1)  # heavy ties
        binner = Binner(max_bins=16).fit(X)
        for j, edges in enumerate(binner.bin_edges_):
            assert not np.isin(edges, X[:, j]).any()

    def test_code_edge_invariant(self):
        # code(x) <= b  ⟺  x <= edges[b]: the property that lets a tree
        # trained on codes predict on raw matrices
        rng = np.random.default_rng(3)
        X = rng.normal(size=(500, 2))
        binner = Binner(max_bins=64).fit(X)
        codes = binner.transform(X)
        for j in range(2):
            for b in (0, 5, len(binner.bin_edges_[j]) - 1):
                left = codes[:, j] <= b
                assert np.array_equal(left, X[:, j] <= binner.bin_edges_[j][b])

    def test_max_bins_validation(self):
        with pytest.raises(ValueError, match="max_bins"):
            Binner(max_bins=1)
        with pytest.raises(ValueError, match="max_bins"):
            Binner(max_bins=257)

    def test_transform_feature_mismatch(self):
        binner = Binner(8).fit(np.zeros((10, 3)) + np.arange(10)[:, None])
        with pytest.raises(ValueError, match="features"):
            binner.transform(np.zeros((5, 4)))


class TestFitTransform:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_fit_then_transform_tie_free(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(500, 20))
        a = Binner(64)
        codes_fused = a.fit_transform(X)
        b = Binner(64).fit(X)
        assert np.array_equal(codes_fused, b.transform(X))
        for ea, eb in zip(a.bin_edges_, b.bin_edges_):
            assert np.array_equal(ea, eb)

    def test_matches_fit_then_transform_with_ties(self):
        rng = np.random.default_rng(4)
        X = np.column_stack(
            [
                rng.normal(size=300),  # tie-free
                np.round(rng.normal(size=300), 1),  # tied
                rng.integers(0, 3, size=300).astype(float),  # 3 distinct
                np.full(300, 2.5),  # constant
            ]
        )
        a = Binner(32)
        codes_fused = a.fit_transform(X)
        b = Binner(32).fit(X)
        assert np.array_equal(codes_fused, b.transform(X))

    def test_small_n_uses_fallback(self):
        # n <= max_bins: every column takes the exact-midpoint path
        rng = np.random.default_rng(5)
        X = rng.normal(size=(20, 3))
        a = Binner(64)
        codes = a.fit_transform(X)
        assert np.array_equal(codes, Binner(64).fit(X).transform(X))

    def test_codes_are_uint8(self):
        X = np.random.default_rng(6).normal(size=(100, 2))
        assert Binner(256).fit_transform(X).dtype == np.uint8


class TestBinnedDataset:
    def _ds(self, n=50, f=4, seed=0):
        X = np.random.default_rng(seed).normal(size=(n, f))
        return X, Binner(16).fit_dataset(X)

    def test_shape_accessors(self):
        _, ds = self._ds()
        assert ds.n_samples == 50 and ds.n_features == 4
        assert len(ds.bin_edges_) == 4

    def test_rejects_non_uint8(self):
        _, ds = self._ds()
        with pytest.raises(ValueError, match="uint8"):
            BinnedDataset(ds.codes.astype(np.int64), ds.binner)

    def test_rejects_wrong_feature_count(self):
        _, ds = self._ds()
        with pytest.raises(ValueError, match="features"):
            BinnedDataset(ds.codes[:, :2], ds.binner)

    def test_take_selects_rows(self):
        _, ds = self._ds()
        sub = ds.take(np.array([3, 3, 7]))
        assert np.array_equal(sub.codes, ds.codes[[3, 3, 7]])
        assert sub.binner is ds.binner

    def test_append_rows_bins_new_rows(self):
        X, ds = self._ds()
        new = np.random.default_rng(9).normal(size=(5, 4))
        grown = ds.append_rows(new)
        assert grown.n_samples == 55
        assert np.array_equal(grown.codes[50:], ds.binner.transform(new))

    def test_codes_t_cached_and_correct(self):
        _, ds = self._ds()
        t1 = ds.codes_T
        assert np.array_equal(t1, ds.codes.T)
        assert t1.flags["C_CONTIGUOUS"]
        assert ds.codes_T is t1  # computed once, shared

    def test_default_max_bins(self):
        assert DEFAULT_MAX_BINS == 256


class TestGrowthBuffer:
    """Amortized-doubling append path (append_codes / append_rows)."""

    def _ds(self, n=50, f=4, seed=0):
        X = np.random.default_rng(seed).normal(size=(n, f))
        return X, Binner(16).fit_dataset(X)

    def test_append_codes_stacks_rows(self):
        _, ds = self._ds()
        new = np.random.default_rng(1).integers(0, 16, size=(7, 4)).astype(np.uint8)
        grown = ds.append_codes(new)
        assert grown.n_samples == 57
        assert np.array_equal(grown.codes[:50], ds.codes)
        assert np.array_equal(grown.codes[50:], new)

    def test_parent_rows_unaffected_by_append(self):
        _, ds = self._ds()
        before = ds.codes.copy()
        row = np.zeros((1, 4), dtype=np.uint8)
        chain = ds
        for _ in range(20):
            chain = chain.append_codes(row)
        assert np.array_equal(ds.codes, before)
        assert ds.n_samples == 50 and chain.n_samples == 70

    def test_appends_share_buffer_amortized(self):
        _, ds = self._ds()
        row = np.ones((1, 4), dtype=np.uint8)
        g1 = ds.append_codes(row)
        g2 = g1.append_codes(row)
        # tail appends share one backing buffer (no per-round full copy)
        assert g2._buf is g1._buf
        assert g2.codes.base is g1.codes.base

    def test_non_tail_append_forks(self):
        _, ds = self._ds()
        row = np.full((1, 4), 3, dtype=np.uint8)
        g1 = ds.append_codes(row)  # ds is no longer the tail
        g2 = ds.append_codes(np.full((1, 4), 9, dtype=np.uint8))
        assert g2._buf is not g1._buf  # sibling forked with a copy
        assert g1.codes[-1][0] == 3
        assert g2.codes[-1][0] == 9
        assert np.array_equal(g1.codes[:50], g2.codes[:50])

    def test_codes_t_stays_correct_across_appends(self):
        _, ds = self._ds()
        _ = ds.codes_T  # build the transpose before growing
        chain = ds
        rng = np.random.default_rng(2)
        for _ in range(5):
            chain = chain.append_codes(
                rng.integers(0, 16, size=(3, 4)).astype(np.uint8)
            )
        assert np.array_equal(
            chain.codes_T, np.ascontiguousarray(chain.codes.T)
        )
        assert np.array_equal(ds.codes_T, ds.codes.T)

    def test_append_rows_still_bins(self):
        X, ds = self._ds()
        new = np.random.default_rng(9).normal(size=(5, 4))
        grown = ds.append_rows(new)
        assert grown.n_samples == 55
        assert np.array_equal(grown.codes[50:], ds.binner.transform(new))

    def test_rejects_wrong_shape(self):
        _, ds = self._ds()
        with pytest.raises(ValueError, match="code rows"):
            ds.append_codes(np.zeros((2, 3), dtype=np.uint8))

    def test_pickle_compacts_buffer(self):
        import pickle

        _, ds = self._ds()
        chain = ds.append_codes(np.zeros((1, 4), dtype=np.uint8))
        clone = pickle.loads(pickle.dumps(chain))
        assert clone.n_samples == chain.n_samples
        assert np.array_equal(clone.codes, chain.codes)
        # the pickled buffer carries no spare capacity
        assert len(clone._buf.rows) == clone.n_samples

    def test_take_and_share_contracts_survive_growth(self):
        _, ds = self._ds()
        chain = ds.append_codes(np.ones((3, 4), dtype=np.uint8))
        sub = chain.take(np.array([0, 52, 1]))
        assert np.array_equal(sub.codes, chain.codes[[0, 52, 1]])
        owner, owner_t = chain.share()
        try:
            assert np.array_equal(np.asarray(owner.array), chain.codes)
            assert np.array_equal(np.asarray(owner_t.array), chain.codes_T)
        finally:
            owner.close()
            owner_t.close()
