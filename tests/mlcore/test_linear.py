"""Tests for logistic regression (L-BFGS l2 / FISTA l1)."""

import numpy as np
import pytest

from repro.mlcore.linear import LogisticRegression


def _linear_data(n=200, m=6, k=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, m))
    W = rng.normal(scale=2.0, size=(m, k))
    y = np.argmax(X @ W, axis=1)
    return X, y


class TestL2:
    def test_learns_linear_problem(self):
        X, y = _linear_data()
        clf = LogisticRegression(penalty="l2", C=10.0).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_small_C_shrinks_weights(self):
        X, y = _linear_data()
        loose = LogisticRegression(penalty="l2", C=100.0).fit(X, y)
        tight = LogisticRegression(penalty="l2", C=0.001).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_binary_problem(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 1, (50, 2)), rng.normal(2, 1, (50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        clf = LogisticRegression().fit(X, y)
        assert clf.score(X, y) > 0.95


class TestL1:
    def test_learns_linear_problem(self):
        X, y = _linear_data()
        clf = LogisticRegression(penalty="l1", C=10.0, max_iter=2000).fit(X, y)
        assert clf.score(X, y) > 0.93

    def test_produces_exact_zeros(self):
        """FISTA's soft-threshold must yield exact sparsity on noise features."""
        rng = np.random.default_rng(0)
        X, y = _linear_data(n=300, m=4)
        X = np.hstack([X, rng.normal(size=(300, 30))])  # 30 pure-noise features
        clf = LogisticRegression(penalty="l1", C=0.05, max_iter=3000).fit(X, y)
        assert clf.sparsity_ > 0.1

    def test_l1_sparser_than_l2(self):
        rng = np.random.default_rng(1)
        X, y = _linear_data(n=300, m=4, seed=1)
        X = np.hstack([X, rng.normal(size=(300, 20))])
        l1 = LogisticRegression(penalty="l1", C=0.05, max_iter=3000).fit(X, y)
        l2 = LogisticRegression(penalty="l2", C=0.05).fit(X, y)
        assert l1.sparsity_ > l2.sparsity_


class TestValidation:
    def test_bad_penalty(self):
        X, y = _linear_data(20)
        with pytest.raises(ValueError, match="penalty"):
            LogisticRegression(penalty="elastic").fit(X, y)

    def test_bad_C(self):
        X, y = _linear_data(20)
        with pytest.raises(ValueError, match="C must be positive"):
            LogisticRegression(C=-1.0).fit(X, y)

    def test_feature_mismatch_at_predict(self):
        X, y = _linear_data(30)
        clf = LogisticRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            clf.predict(np.ones((2, 99)))


class TestProba:
    @pytest.mark.parametrize("penalty", ["l1", "l2"])
    def test_rows_sum_to_one(self, penalty):
        X, y = _linear_data()
        clf = LogisticRegression(penalty=penalty).fit(X, y)
        proba = clf.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_confidence_grows_away_from_boundary(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 1, (50, 1)), rng.normal(2, 1, (50, 1))])
        y = np.array([0] * 50 + [1] * 50)
        clf = LogisticRegression(C=10.0).fit(X, y)
        p_far = clf.predict_proba(np.array([[5.0]]))[0].max()
        p_near = clf.predict_proba(np.array([[0.05]]))[0].max()
        assert p_far > p_near

    def test_string_labels(self):
        X, y = _linear_data()
        names = np.array(["healthy", "membw", "dial"])[y]
        clf = LogisticRegression().fit(X, names)
        assert set(clf.predict(X)) <= set(names)
