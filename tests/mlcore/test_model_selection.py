"""Tests for stratified splitting, K-fold CV, and grid search."""

import numpy as np
import pytest

from repro.mlcore.forest import RandomForestClassifier
from repro.mlcore.linear import LogisticRegression
from repro.mlcore.model_selection import (
    GridSearchCV,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self, blobs):
        X, y = blobs
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(Xte) == pytest.approx(0.25 * len(X), abs=4)
        assert len(Xtr) + len(Xte) == len(X)

    def test_stratification_preserves_class_ratio(self, blobs):
        X, y = blobs
        _, _, ytr, yte = train_test_split(X, y, test_size=0.3, random_state=0)
        for cls in np.unique(y):
            frac_te = np.mean(yte == cls)
            frac_full = np.mean(y == cls)
            assert frac_te == pytest.approx(frac_full, abs=0.05)

    def test_every_class_on_both_sides(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.array([0] * 17 + [1] * 3)
        _, _, ytr, yte = train_test_split(X, y, test_size=0.2, random_state=0)
        assert set(ytr) == {0, 1} and set(yte) == {0, 1}

    def test_extra_arrays_travel_with_rows(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0, 1] * 5)
        meta = np.arange(10) * 100
        Xtr, Xte, ytr, yte, mtr, mte = train_test_split(
            X, y, meta, test_size=0.3, random_state=0
        )
        assert np.array_equal(mtr // 100, Xtr.ravel().astype(int))
        assert np.array_equal(mte // 100, Xte.ravel().astype(int))

    def test_invalid_test_size(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="test_size"):
            train_test_split(X, y, test_size=1.5)

    def test_unstratified_mode(self, blobs):
        X, y = blobs
        Xtr, Xte, ytr, yte = train_test_split(
            X, y, test_size=0.5, stratify=False, random_state=0
        )
        assert len(Xte) == len(X) // 2

    def test_reproducible(self, blobs):
        X, y = blobs
        a = train_test_split(X, y, random_state=9)
        b = train_test_split(X, y, random_state=9)
        assert np.array_equal(a[0], b[0])


class TestStratifiedKFold:
    def test_folds_partition_the_data(self, blobs):
        X, y = blobs
        skf = StratifiedKFold(n_splits=5, random_state=0)
        seen = np.zeros(len(y), dtype=int)
        for train_idx, test_idx in skf.split(X, y):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            seen[test_idx] += 1
        assert np.all(seen == 1)

    def test_class_balance_in_folds(self, blobs):
        X, y = blobs
        for train_idx, test_idx in StratifiedKFold(5, random_state=0).split(X, y):
            for cls in np.unique(y):
                assert np.mean(y[test_idx] == cls) == pytest.approx(0.25, abs=0.1)

    def test_tiny_classes_do_not_crash(self):
        """Classes smaller than n_splits must still be handled (seed sets)."""
        X = np.arange(12, dtype=float).reshape(-1, 1)
        y = np.array([0] * 10 + [1, 2])
        folds = list(StratifiedKFold(5, random_state=0).split(X, y))
        assert len(folds) == 5

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError, match="n_splits"):
            StratifiedKFold(n_splits=1)


class TestCrossValScore:
    def test_returns_per_fold_scores(self, blobs):
        X, y = blobs
        scores = cross_val_score(
            LogisticRegression(C=10.0), X, y, cv=4
        )
        assert len(scores) == 4
        assert np.all(scores > 0.9)

    def test_does_not_mutate_prototype(self, blobs):
        X, y = blobs
        proto = LogisticRegression()
        cross_val_score(proto, X, y, cv=3)
        assert not hasattr(proto, "coef_")


class TestGridSearch:
    def test_finds_better_params_than_worst(self, blobs):
        """L1 with a vanishing C zeroes every weight (uniform predictions),
        so the sane C must win the search."""
        X, y = blobs
        search = GridSearchCV(
            LogisticRegression(penalty="l1"),
            {"C": [1e-8, 10.0]},
            cv=3,
        ).fit(X, y)
        assert search.best_params_["C"] == 10.0

    def test_results_cover_full_grid(self, blobs):
        X, y = blobs
        search = GridSearchCV(
            LogisticRegression(),
            {"C": [0.1, 1.0], "penalty": ["l1", "l2"]},
            cv=3,
        ).fit(X, y)
        assert len(search.results_) == 4
        params_seen = {tuple(sorted(r.params.items())) for r in search.results_}
        assert len(params_seen) == 4

    def test_refit_enables_prediction(self, blobs):
        X, y = blobs
        search = GridSearchCV(
            RandomForestClassifier(n_estimators=5, random_state=0),
            {"max_depth": [2, 8]},
            cv=3,
        ).fit(X, y)
        assert search.predict(X).shape == (len(y),)
        assert search.predict_proba(X).shape == (len(y), 4)

    def test_no_refit_mode(self, blobs):
        X, y = blobs
        search = GridSearchCV(
            LogisticRegression(), {"C": [1.0]}, cv=3, refit=False
        ).fit(X, y)
        assert not hasattr(search, "best_estimator_")

    def test_empty_grid_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="empty"):
            GridSearchCV(LogisticRegression(), {"C": []}, cv=3).fit(X, y)

    def test_best_score_is_max_mean(self, blobs):
        X, y = blobs
        search = GridSearchCV(
            LogisticRegression(), {"C": [1e-4, 1.0, 10.0]}, cv=3
        ).fit(X, y)
        assert search.best_score_ == max(r.mean_score for r in search.results_)
