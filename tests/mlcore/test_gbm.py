"""Tests for the LightGBM-style gradient boosting classifier."""

import numpy as np
import pytest

from repro.mlcore.gbm import LGBMClassifier, _RegressionTree


class TestRegressionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        target = np.where(X[:, 0] > 0.5, 1.0, -1.0)
        # gradients of squared loss at prediction 0: g = -target, h = 1
        tree = _RegressionTree(
            num_leaves=4, max_depth=-1, min_child_samples=1,
            reg_lambda=0.0, min_split_gain=1e-12, leaf_wise=True,
        ).fit(X, -target, np.ones(50), np.array([0]))
        pred = tree.predict(X)
        assert np.allclose(pred, target, atol=1e-6)

    def test_num_leaves_bound(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        g = rng.normal(size=200)
        tree = _RegressionTree(
            num_leaves=5, max_depth=-1, min_child_samples=1,
            reg_lambda=1.0, min_split_gain=1e-12, leaf_wise=True,
        ).fit(X, g, np.ones(200), np.arange(3))
        n_leaves = int(np.sum(tree._feature == -1))
        assert n_leaves <= 5

    def test_reg_lambda_shrinks_leaf_values(self):
        X = np.linspace(0, 1, 40).reshape(-1, 1)
        g = -np.ones(40)
        h = np.ones(40)
        low = _RegressionTree(2, -1, 1, 0.0, 1e-12, True).fit(X, g, h, np.array([0]))
        high = _RegressionTree(2, -1, 1, 50.0, 1e-12, True).fit(X, g, h, np.array([0]))
        assert abs(high.predict(X)).max() < abs(low.predict(X)).max()


class TestLGBMClassifier:
    def test_learns_blobs(self, blobs):
        X, y = blobs
        clf = LGBMClassifier(n_estimators=25, num_leaves=8, random_state=0).fit(X, y)
        assert clf.score(X, y) > 0.97

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        clf = LGBMClassifier(n_estimators=10, num_leaves=8, random_state=0).fit(X, y)
        proba = clf.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_more_rounds_reduce_training_error(self, blobs):
        X, y = blobs
        rng = np.random.default_rng(0)
        Xn = X + rng.normal(scale=1.5, size=X.shape)
        few = LGBMClassifier(n_estimators=2, num_leaves=4, random_state=0).fit(Xn, y)
        many = LGBMClassifier(n_estimators=40, num_leaves=4, random_state=0).fit(Xn, y)
        assert many.score(Xn, y) >= few.score(Xn, y)

    def test_learning_rate_zero_point_three(self, blobs):
        X, y = blobs
        clf = LGBMClassifier(
            n_estimators=10, num_leaves=8, learning_rate=0.3, random_state=0
        ).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_colsample_bytree(self, blobs):
        X, y = blobs
        clf = LGBMClassifier(
            n_estimators=15, num_leaves=8, colsample_bytree=0.5, random_state=0
        ).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_invalid_colsample(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="colsample"):
            LGBMClassifier(colsample_bytree=0.0).fit(X, y)

    def test_invalid_growth(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError, match="growth"):
            LGBMClassifier(growth="best").fit(X, y)

    def test_depth_wise_mode_learns(self, blobs):
        X, y = blobs
        clf = LGBMClassifier(
            n_estimators=15, num_leaves=8, growth="depth", random_state=0
        ).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_max_depth_2(self, blobs):
        X, y = blobs
        clf = LGBMClassifier(
            n_estimators=10, num_leaves=31, max_depth=2, random_state=0
        ).fit(X, y)
        for round_trees in clf._trees:
            for tree in round_trees:
                # depth-2 tree has at most 4 leaves
                assert int(np.sum(tree._feature == -1)) <= 4

    def test_string_labels(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (40, 3)), rng.normal(4, 1, (40, 3))])
        y = np.array(["a"] * 40 + ["b"] * 40)
        clf = LGBMClassifier(n_estimators=5, num_leaves=4, random_state=0).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_determinism(self, blobs):
        X, y = blobs
        p1 = LGBMClassifier(n_estimators=5, colsample_bytree=0.5, random_state=4).fit(X, y).predict_proba(X)
        p2 = LGBMClassifier(n_estimators=5, colsample_bytree=0.5, random_state=4).fit(X, y).predict_proba(X)
        assert np.array_equal(p1, p2)

    def test_decision_function_matches_proba_argmax(self, blobs):
        X, y = blobs
        clf = LGBMClassifier(n_estimators=8, num_leaves=8, random_state=0).fit(X, y)
        raw = clf.decision_function(X[:25])
        proba = clf.predict_proba(X[:25])
        assert np.array_equal(np.argmax(raw, axis=1), np.argmax(proba, axis=1))
