"""Tests for RunRecord and the Collector."""

import numpy as np
import pytest

from repro.anomalies import get_anomaly
from repro.apps.volta_apps import VOLTA_APPS
from repro.telemetry.catalog import build_catalog
from repro.telemetry.collector import Collector, RunRecord
from repro.telemetry.node import VOLTA_NODE


@pytest.fixture(scope="module")
def collector():
    cat = build_catalog(n_cores=2, n_nics=1, n_extra_cray=4)
    return Collector(cat, VOLTA_NODE, missing_rate=0.0)


class TestRunRecord:
    def test_label_healthy_when_no_anomaly(self):
        rec = RunRecord(
            app="CG", input_deck=0, node_count=4, node_id=0,
            anomaly=None, intensity=0.0, data=np.zeros((10, 3)),
        )
        assert rec.label == "healthy"
        assert rec.duration == 10

    def test_label_is_anomaly_name(self):
        rec = RunRecord(
            app="CG", input_deck=0, node_count=4, node_id=0,
            anomaly="membw", intensity=0.5, data=np.zeros((10, 3)),
        )
        assert rec.label == "membw"

    def test_bad_intensity(self):
        with pytest.raises(ValueError, match="intensity"):
            RunRecord(
                app="CG", input_deck=0, node_count=4, node_id=0,
                anomaly="membw", intensity=1.5, data=np.zeros((10, 3)),
            )

    def test_metric_names_mismatch(self):
        with pytest.raises(ValueError, match="metric_names"):
            RunRecord(
                app="CG", input_deck=0, node_count=4, node_id=0,
                anomaly=None, intensity=0.0, data=np.zeros((10, 3)),
                metric_names=["a"],
            )


class TestCollect:
    def test_healthy_run(self, collector):
        rec = collector.collect(VOLTA_APPS["CG"], input_deck=0, duration=64, rng=0)
        assert rec.data.shape == (64, len(collector.catalog))
        assert rec.label == "healthy"
        assert rec.metric_names == collector.catalog.names

    def test_anomalous_run(self, collector):
        rec = collector.collect(
            VOLTA_APPS["CG"], input_deck=0, duration=64,
            anomaly=get_anomaly("cpuoccupy"), intensity=1.0, rng=0,
        )
        assert rec.label == "cpuoccupy"
        assert rec.intensity == 1.0

    def test_anomaly_only_on_first_node(self, collector):
        with pytest.raises(ValueError, match="first allocated"):
            collector.collect(
                VOLTA_APPS["CG"], input_deck=0, duration=64,
                anomaly=get_anomaly("membw"), intensity=0.5, node_id=2, rng=0,
            )

    def test_anomaly_moves_telemetry(self, collector):
        """A full-intensity cpuoccupy must visibly shift CPU-coupled metrics."""
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        healthy = collector.collect(VOLTA_APPS["CG"], 0, 128, rng=rng1)
        sick = collector.collect(
            VOLTA_APPS["CG"], 0, 128,
            anomaly=get_anomaly("cpuoccupy"), intensity=1.0, rng=rng2,
        )
        i = healthy.metric_names.index("procstat.cpu0.user")
        rate_h = np.diff(healthy.data[:, i]).mean()
        rate_s = np.diff(sick.data[:, i]).mean()
        assert rate_s > rate_h * 1.2

    def test_run_to_run_variation(self, collector):
        rng = np.random.default_rng(0)
        a = collector.collect(VOLTA_APPS["Kripke"], 0, 64, rng=rng)
        b = collector.collect(VOLTA_APPS["Kripke"], 0, 64, rng=rng)
        assert not np.array_equal(a.data, b.data)
