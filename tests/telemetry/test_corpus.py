"""Tests for the packed RunCorpus container."""

import pickle

import numpy as np
import pytest

from repro.telemetry.collector import RunRecord
from repro.telemetry.corpus import RunCorpus


def _records(n=5, width=3, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        T = int(rng.integers(4, 9))
        records.append(
            RunRecord(
                data=rng.normal(size=(T, width)),
                metric_names=[f"m{j}" for j in range(width)],
                app=f"app{i % 2}",
                input_deck=i % 3,
                node_count=4,
                node_id=i,
                anomaly="membw" if i % 2 else None,
                intensity=0.5 if i % 2 else 0.0,
            )
        )
    return records


class TestRoundtrip:
    def test_records_survive_packing(self):
        records = _records()
        corpus = RunCorpus.from_records(records)
        assert len(corpus) == len(records)
        for i, original in enumerate(records):
            back = corpus.record(i)
            assert np.array_equal(back.data, original.data)
            assert back.app == original.app
            assert back.input_deck == original.input_deck
            assert back.label == original.label
            assert back.intensity == original.intensity
            assert back.node_count == original.node_count

    def test_to_records_matches(self):
        records = _records()
        back = RunCorpus.from_records(records).to_records()
        assert [r.label for r in back] == [r.label for r in records]
        assert all(
            np.array_equal(a.data, b.data) for a, b in zip(back, records)
        )

    def test_labels_map_empty_anomaly_to_healthy(self):
        corpus = RunCorpus.from_records(_records())
        labels = corpus.labels
        assert labels[0] == "healthy"
        assert labels[1] == "membw"

    def test_run_data_is_view(self):
        corpus = RunCorpus.from_records(_records())
        assert corpus.run_data(2).base is corpus.buffer

    def test_pickle_roundtrip(self):
        corpus = RunCorpus.from_records(_records())
        back = pickle.loads(pickle.dumps(corpus))
        assert np.array_equal(back.buffer, corpus.buffer)
        assert np.array_equal(back.offsets, corpus.offsets)
        assert list(back.apps) == list(corpus.apps)


class TestChunkConcat:
    def test_chunk_shares_data(self):
        corpus = RunCorpus.from_records(_records())
        chunk = corpus.chunk(1, 4)
        assert len(chunk) == 3
        for i in range(3):
            assert np.array_equal(chunk.run_data(i), corpus.run_data(1 + i))
        assert list(chunk.apps) == list(corpus.apps[1:4])

    def test_concat_of_chunks_is_identity(self):
        corpus = RunCorpus.from_records(_records(n=7))
        parts = [corpus.chunk(0, 2), corpus.chunk(2, 5), corpus.chunk(5, 7)]
        back = RunCorpus.concat(parts)
        assert np.array_equal(back.buffer, corpus.buffer)
        assert np.array_equal(back.offsets, corpus.offsets)
        assert list(back.anomalies) == list(corpus.anomalies)

    def test_concat_single_part(self):
        corpus = RunCorpus.from_records(_records(n=3))
        back = RunCorpus.concat([corpus])
        assert np.array_equal(back.buffer, corpus.buffer)


class TestValidation:
    def test_from_records_rejects_mixed_width(self):
        records = _records(n=2, width=3)
        bad = RunRecord(
            data=np.zeros((5, 4)),
            metric_names=[f"m{j}" for j in range(4)],
            app="x",
            input_deck=0,
            node_count=4,
            node_id=9,
            anomaly=None,
            intensity=0.0,
        )
        with pytest.raises(ValueError):
            RunCorpus.from_records(records + [bad])

    def test_from_records_rejects_empty(self):
        with pytest.raises(ValueError):
            RunCorpus.from_records([])

    def test_bad_offsets_rejected(self):
        corpus = RunCorpus.from_records(_records(n=3))
        with pytest.raises(ValueError):
            RunCorpus(
                buffer=corpus.buffer,
                offsets=corpus.offsets[:-1],  # span mismatch
                apps=corpus.apps,
                input_decks=corpus.input_decks,
                node_counts=corpus.node_counts,
                node_ids=corpus.node_ids,
                anomalies=corpus.anomalies,
                intensities=corpus.intensities,
                metric_names=corpus.metric_names,
            )
