"""Tests for the compute-node resource model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.catalog import RESOURCE_DIMS
from repro.telemetry.node import ECLIPSE_NODE, VOLTA_NODE, NodeProfile

D = len(RESOURCE_DIMS)


class TestProfiles:
    def test_paper_hardware(self):
        assert VOLTA_NODE.n_cores == 48 and VOLTA_NODE.mem_gb == 64
        assert ECLIPSE_NODE.n_cores == 72 and ECLIPSE_NODE.mem_gb == 128

    def test_invalid_capacity_length(self):
        with pytest.raises(ValueError, match="entries"):
            NodeProfile(name="x", n_cores=1, mem_gb=1, capacity=(1.0,))

    def test_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            NodeProfile(name="x", n_cores=1, mem_gb=1, capacity=(0.0,) * D)


class TestUtilize:
    def test_low_demand_passes_through(self):
        demand = np.full((5, D), 0.3)
        util = VOLTA_NODE.utilize(demand)
        assert np.allclose(util, 0.3, atol=0.01)

    def test_overload_saturates_near_capacity(self):
        demand = np.full((5, D), 5.0)
        util = VOLTA_NODE.utilize(demand)
        assert np.all(util <= 1.01)
        assert np.all(util > 0.9)

    def test_monotone_in_demand(self):
        d1 = np.full((1, D), 0.4)
        d2 = np.full((1, D), 0.8)
        assert np.all(VOLTA_NODE.utilize(d2) >= VOLTA_NODE.utilize(d1))

    def test_negative_demand_clipped(self):
        demand = np.full((2, D), -1.0)
        assert np.all(VOLTA_NODE.utilize(demand) == 0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="demand"):
            VOLTA_NODE.utilize(np.ones((3, D + 1)))

    @given(
        level=st.floats(0.0, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_utilization_never_exceeds_capacity_envelope(self, level):
        util = VOLTA_NODE.utilize(np.full((1, D), level))
        # soft-min is bounded by both demand and capacity
        assert np.all(util <= level + 1e-9)
        assert np.all(util <= 1.0 + 1e-9)


class TestSlowdown:
    def test_no_contention_no_slowdown(self):
        app = np.full((3, D), 0.4)
        assert np.allclose(VOLTA_NODE.slowdown(app, app), 1.0)

    def test_oversubscription_slows_app(self):
        app = np.full((3, D), 0.6)
        total = np.full((3, D), 1.5)
        s = VOLTA_NODE.slowdown(app, total)
        assert np.all(s < 1.0)
        assert np.allclose(s, 1.0 / 1.5)

    def test_unused_dimension_cannot_slow(self):
        app = np.zeros((2, D))
        app[:, 0] = 0.5  # uses cpu only
        total = app.copy()
        total[:, 1] = 3.0  # cache is swamped by someone else
        assert np.allclose(VOLTA_NODE.slowdown(app, total), 1.0)

    def test_worst_dimension_dominates(self):
        app = np.full((1, D), 0.5)
        total = np.full((1, D), 1.0)
        total[0, 2] = 2.0
        assert np.allclose(VOLTA_NODE.slowdown(app, total), 0.5)
