"""Tests for the 1 Hz telemetry sampler."""

import numpy as np
import pytest

from repro.telemetry.catalog import RESOURCE_DIMS, build_catalog
from repro.telemetry.node import VOLTA_NODE
from repro.telemetry.sampler import TelemetrySampler

D = len(RESOURCE_DIMS)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(n_cores=2, n_nics=1, n_extra_cray=4)


@pytest.fixture(scope="module")
def demand():
    rng = np.random.default_rng(0)
    return np.clip(0.5 + 0.1 * rng.normal(size=(100, D)), 0, 1)


class TestShapes:
    def test_output_shape(self, catalog, demand):
        sampler = TelemetrySampler(catalog, VOLTA_NODE, missing_rate=0.0)
        out = sampler.sample(demand, rng=0)
        assert out.shape == (100, len(catalog))

    def test_bad_demand_shape(self, catalog):
        sampler = TelemetrySampler(catalog, VOLTA_NODE)
        with pytest.raises(ValueError, match="demand"):
            sampler.sample(np.ones((10, D + 2)), rng=0)

    def test_invalid_missing_rate(self, catalog):
        with pytest.raises(ValueError, match="missing_rate"):
            TelemetrySampler(catalog, VOLTA_NODE, missing_rate=1.0)

    def test_invalid_burst(self, catalog):
        with pytest.raises(ValueError, match="missing_burst"):
            TelemetrySampler(catalog, VOLTA_NODE, missing_burst=0.5)


class TestCounters:
    def test_counters_monotone_nondecreasing(self, catalog, demand):
        sampler = TelemetrySampler(catalog, VOLTA_NODE, missing_rate=0.0)
        out = sampler.sample(demand, rng=1)
        counters = catalog.counter_mask
        diffs = np.diff(out[:, counters], axis=0)
        assert np.all(diffs >= 0)

    def test_gauges_fluctuate(self, catalog, demand):
        sampler = TelemetrySampler(catalog, VOLTA_NODE, missing_rate=0.0)
        out = sampler.sample(demand, rng=1)
        gauges = ~catalog.counter_mask
        assert np.any(np.diff(out[:, gauges], axis=0) < 0)

    def test_counter_rate_tracks_demand(self, catalog):
        """Doubling demand raises the accumulation rate of coupled counters."""
        sampler = TelemetrySampler(catalog, VOLTA_NODE, missing_rate=0.0)
        low = sampler.sample(np.full((50, D), 0.2), rng=2)
        high = sampler.sample(np.full((50, D), 0.8), rng=2)
        counters = catalog.counter_mask
        assert high[-1, counters].sum() > low[-1, counters].sum()


class TestMissingness:
    def test_zero_rate_no_nans(self, catalog, demand):
        sampler = TelemetrySampler(catalog, VOLTA_NODE, missing_rate=0.0)
        assert not np.isnan(sampler.sample(demand, rng=0)).any()

    def test_marginal_rate_approximate(self, catalog, demand):
        sampler = TelemetrySampler(catalog, VOLTA_NODE, missing_rate=0.05)
        out = sampler.sample(demand, rng=3)
        rate = np.isnan(out).mean()
        assert 0.01 < rate < 0.12

    def test_bursts_are_consecutive(self, catalog):
        """With burst length 5, missing runs should often exceed 1 sample."""
        sampler = TelemetrySampler(
            catalog, VOLTA_NODE, missing_rate=0.05, missing_burst=5.0
        )
        out = sampler.sample(np.full((300, D), 0.5), rng=4)
        nan_mask = np.isnan(out)
        # measure run lengths down columns
        run_lengths = []
        for j in range(nan_mask.shape[1]):
            col = nan_mask[:, j]
            run = 0
            for v in col:
                if v:
                    run += 1
                elif run:
                    run_lengths.append(run)
                    run = 0
            if run:
                run_lengths.append(run)
        assert run_lengths and max(run_lengths) >= 3


class TestDeterminism:
    def test_same_seed_same_sample(self, catalog, demand):
        sampler = TelemetrySampler(catalog, VOLTA_NODE, missing_rate=0.01)
        a = sampler.sample(demand, rng=9)
        b = sampler.sample(demand, rng=9)
        assert np.array_equal(a, b, equal_nan=True)
