"""Tests for the metric catalog."""

import numpy as np
import pytest

from repro.telemetry.catalog import (
    RESOURCE_DIMS,
    MetricKind,
    Subsystem,
    build_catalog,
    eclipse_catalog,
    volta_catalog,
)


class TestBuild:
    def test_paper_metric_counts(self):
        """Full-scale catalogs match the paper: 721 (Volta), 806 (Eclipse)."""
        assert len(volta_catalog()) == 721
        assert len(eclipse_catalog()) == 806

    def test_scaled_catalogs_shrink(self):
        assert len(volta_catalog(scale=0.1)) < 721

    def test_all_subsystems_present(self):
        cat = build_catalog(n_cores=2, n_nics=1, n_extra_cray=4)
        present = {s.subsystem for s in cat}
        assert present == set(Subsystem)

    def test_names_unique(self):
        cat = volta_catalog(scale=0.2)
        assert len(set(cat.names)) == len(cat)

    def test_core_count_scales_cpu_group(self):
        small = build_catalog(n_cores=2)
        big = build_catalog(n_cores=8)
        assert len(big.by_subsystem(Subsystem.CPU)) == 4 * len(
            small.by_subsystem(Subsystem.CPU)
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_catalog(n_cores=0)


class TestDeterminism:
    def test_same_params_identical_catalog(self):
        a = build_catalog(n_cores=3, n_nics=2, n_extra_cray=6)
        b = build_catalog(n_cores=3, n_nics=2, n_extra_cray=6)
        assert a.names == b.names
        assert np.array_equal(a.response_matrix, b.response_matrix)
        assert np.array_equal(a.baselines, b.baselines)


class TestVectorizedViews:
    @pytest.fixture(scope="class")
    def cat(self):
        return build_catalog(n_cores=2, n_nics=1, n_extra_cray=4)

    def test_response_matrix_shape(self, cat):
        assert cat.response_matrix.shape == (len(cat), len(RESOURCE_DIMS))

    def test_counter_mask_matches_kinds(self, cat):
        mask = cat.counter_mask
        for spec, flag in zip(cat, mask):
            assert flag == (spec.kind is MetricKind.COUNTER)

    def test_noise_scales_positive(self, cat):
        assert np.all(cat.noise_scales > 0)

    def test_respond_linearity(self, cat):
        spec = cat.specs[0]
        demand = np.ones((4, len(RESOURCE_DIMS)))
        out = spec.respond(demand)
        assert out.shape == (4,)
        assert np.allclose(out, spec.baseline + np.sum(spec.response))


class TestSemantics:
    def test_cpu_user_metrics_respond_to_cpu(self):
        cat = build_catalog(n_cores=2)
        user = next(s for s in cat if s.name == "procstat.cpu0.user")
        assert user.response[RESOURCE_DIMS.index("cpu")] > 0.5

    def test_idle_metric_anticorrelates_with_cpu(self):
        cat = build_catalog(n_cores=2)
        idle = next(s for s in cat if s.name == "procstat.cpu0.idle")
        assert idle.response[RESOURCE_DIMS.index("cpu")] < 0

    def test_memfree_anticorrelates_with_mem(self):
        cat = build_catalog()
        memfree = next(s for s in cat if s.name == "meminfo.MemFree")
        assert memfree.response[RESOURCE_DIMS.index("mem")] < 0

    def test_network_metrics_are_counters(self):
        cat = build_catalog()
        for spec in cat.by_subsystem(Subsystem.NETWORK):
            assert spec.kind is MetricKind.COUNTER
