"""Tests for the HPAS-style anomaly injectors."""

import numpy as np
import pytest

from repro.anomalies.base import ECLIPSE_INTENSITIES, VOLTA_INTENSITIES, Anomaly
from repro.anomalies.injectors import (
    ANOMALIES,
    CacheCopy,
    CpuOccupy,
    Dial,
    MemBandwidth,
    MemLeak,
    get_anomaly,
)
from repro.telemetry.catalog import RESOURCE_DIMS

D = len(RESOURCE_DIMS)


def _flat_demand(T=200, level=0.4):
    return np.full((T, D), level)


def _dim(name):
    return RESOURCE_DIMS.index(name)


class TestSuite:
    def test_paper_anomaly_set(self):
        assert set(ANOMALIES) == {"cpuoccupy", "cachecopy", "membw", "memleak", "dial"}

    def test_paper_intensity_grids(self):
        assert VOLTA_INTENSITIES == (0.02, 0.05, 0.10, 0.20, 0.50, 1.00)
        assert len(ECLIPSE_INTENSITIES) in (2, 3)

    def test_lookup(self):
        assert get_anomaly("membw").name == "membw"
        with pytest.raises(ValueError, match="unknown anomaly"):
            get_anomaly("gremlins")

    def test_base_perturbation_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Anomaly().perturbation(10, 0.5, np.random.default_rng(0))


class TestValidation:
    @pytest.mark.parametrize("name", sorted(ANOMALIES))
    def test_intensity_range(self, name):
        with pytest.raises(ValueError, match="intensity"):
            get_anomaly(name).inject(_flat_demand(), intensity=0.0, rng=0)
        with pytest.raises(ValueError, match="intensity"):
            get_anomaly(name).inject(_flat_demand(), intensity=1.5, rng=0)

    def test_demand_shape(self):
        with pytest.raises(ValueError, match="demand"):
            CpuOccupy().inject(np.ones((10, D + 1)), intensity=0.5, rng=0)

    @pytest.mark.parametrize("name", sorted(ANOMALIES))
    def test_output_nonnegative_and_same_shape(self, name):
        demand = _flat_demand()
        out = get_anomaly(name).inject(demand, intensity=0.5, rng=0)
        assert out.shape == demand.shape
        assert np.all(out >= 0)


class TestDirections:
    def test_cpuoccupy_raises_cpu(self):
        demand = _flat_demand()
        out = CpuOccupy().inject(demand, intensity=1.0, rng=0)
        assert out[:, _dim("cpu")].mean() > demand[:, _dim("cpu")].mean() + 0.5

    def test_cachecopy_raises_cache_most(self):
        demand = _flat_demand()
        out = CacheCopy().inject(demand, intensity=1.0, rng=0)
        delta = out.mean(axis=0) - demand.mean(axis=0)
        assert np.argmax(delta) == _dim("cache")

    def test_membw_raises_membw_most(self):
        demand = _flat_demand()
        out = MemBandwidth().inject(demand, intensity=1.0, rng=0)
        delta = out.mean(axis=0) - demand.mean(axis=0)
        assert np.argmax(delta) == _dim("membw")

    def test_memleak_ramps_memory(self):
        demand = _flat_demand(T=300)
        out = MemLeak().inject(demand, intensity=1.0, rng=0)
        mem = out[:, _dim("mem")]
        first, last = mem[:50].mean(), mem[-50:].mean()
        assert last > first + 0.5  # strong upward ramp

    def test_dial_lowers_cpu(self):
        demand = _flat_demand()
        out = Dial().inject(demand, intensity=1.0, rng=0)
        assert out[:, _dim("cpu")].mean() < demand[:, _dim("cpu")].mean() * 0.7

    def test_dial_leaves_mem_level_alone(self):
        demand = _flat_demand()
        out = Dial().inject(demand, intensity=1.0, rng=0)
        assert np.allclose(out[:, _dim("mem")], demand[:, _dim("mem")])


class TestDutyCycle:
    def test_intensity_controls_active_fraction(self):
        demand = np.zeros((2000, D))
        rng = np.random.default_rng(0)
        out = CpuOccupy().inject(demand, intensity=0.2, rng=rng)
        active = out[:, _dim("cpu")] > 0.3
        assert active.mean() == pytest.approx(0.2, abs=0.06)

    def test_full_intensity_always_active(self):
        demand = np.zeros((200, D))
        out = MemBandwidth().inject(demand, intensity=1.0, rng=0)
        assert np.all(out[:, _dim("membw")] > 0.5)

    def test_low_intensity_mostly_inactive(self):
        demand = np.zeros((2000, D))
        out = CacheCopy().inject(demand, intensity=0.02, rng=0)
        active = out[:, _dim("cache")] > 0.3
        assert active.mean() < 0.1

    def test_higher_intensity_bigger_average_footprint(self):
        demand = _flat_demand(T=1000)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        weak = CpuOccupy().inject(demand, intensity=0.05, rng=rng1)
        strong = CpuOccupy().inject(demand, intensity=0.5, rng=rng2)
        assert strong[:, _dim("cpu")].mean() > weak[:, _dim("cpu")].mean()


class TestStochasticity:
    @pytest.mark.parametrize("name", sorted(ANOMALIES))
    def test_repeated_injections_differ(self, name):
        demand = _flat_demand()
        rng = np.random.default_rng(0)
        a = get_anomaly(name).inject(demand, intensity=0.5, rng=rng)
        b = get_anomaly(name).inject(demand, intensity=0.5, rng=rng)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(ANOMALIES))
    def test_seeded_injections_reproduce(self, name):
        demand = _flat_demand()
        a = get_anomaly(name).inject(demand, intensity=0.5, rng=42)
        b = get_anomaly(name).inject(demand, intensity=0.5, rng=42)
        assert np.array_equal(a, b)
