"""Documentation honesty checks.

Docs rot silently; these tests keep the load-bearing references alive:
every module, class, and function the markdown files name must actually
exist, and the documented artifact lists must match the bench suite.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"


class TestDocsExist:
    def test_doc_files_present(self):
        expected = {
            "architecture.md",
            "substrate.md",
            "active_learning.md",
            "benchmarks.md",
            "operations.md",
            "mlcore.md",
            "data_plane.md",
        }
        assert expected <= {p.name for p in DOCS.glob("*.md")}

    def test_top_level_docs_present(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).exists(), name


class TestDottedReferencesResolve:
    """Every `repro.x.y` dotted path mentioned in the docs must import."""

    DOTTED = re.compile(r"`(repro(?:\.[a-z_]+)+)`")

    @pytest.mark.parametrize(
        "doc", sorted(DOCS.glob("*.md")), ids=lambda p: p.name
    )
    def test_module_paths_import(self, doc):
        import importlib

        text = doc.read_text()
        for match in set(self.DOTTED.findall(text)):
            parts = match.split(".")
            # try progressively shorter prefixes: the path may end in an
            # attribute (class/function) rather than a module
            for cut in range(len(parts), 0, -1):
                candidate = ".".join(parts[:cut])
                try:
                    mod = importlib.import_module(candidate)
                except ImportError:
                    continue
                obj = mod
                ok = True
                for attr in parts[cut:]:
                    if not hasattr(obj, attr):
                        ok = False
                        break
                    obj = getattr(obj, attr)
                assert ok, f"{doc.name}: {match} resolves to module {candidate} but attribute chain fails"
                break
            else:
                pytest.fail(f"{doc.name}: dotted path {match} does not import")


class TestNamedSymbolsExist:
    """Spot-check classes/functions the docs lean on."""

    def test_core_symbols(self):
        from repro.core import (  # noqa: F401
            ALBADross,
            AnnotationSession,
            AnomalyDetector,
            DriftMonitor,
            FrameworkConfig,
            MetricHighlighter,
        )

    def test_active_symbols(self):
        from repro.active import (  # noqa: F401
            ActiveLearner,
            DensityWeightedUncertainty,
            QueryByCommittee,
            RankedBatchSelector,
            StreamActiveLearner,
            run_active_learning,
        )

    def test_mlcore_symbols(self):
        from repro.mlcore import (  # noqa: F401
            Autoencoder,
            LGBMClassifier,
            LogisticRegression,
            MLPClassifier,
            MajorityClassifier,
            RandomForestClassifier,
            TemperatureScaler,
        )


class TestBenchArtifactListMatches:
    def test_benchmarks_doc_covers_all_bench_files(self):
        doc = (DOCS / "benchmarks.md").read_text()
        bench_files = {
            p.stem for p in (REPO / "benchmarks").glob("test_*.py")
        }
        for name in bench_files:
            assert name in doc, f"benchmarks.md does not mention {name}"

    def test_experiments_md_covers_all_artifacts(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in (
            "test_table4_hyperparams",
            "test_table5_summary",
            "test_fig3_volta_curves",
            "test_fig4_query_distribution",
            "test_fig5_eclipse_curves",
            "test_fig6_unseen_apps",
            "test_fig7_robustness_motivation",
            "test_fig8_unseen_inputs",
        ):
            assert artifact in text, artifact


class TestExamplesListed:
    def test_readme_mentions_every_example(self):
        readme = (REPO / "README.md").read_text()
        for example in (REPO / "examples").glob("*.py"):
            assert example.name in readme, f"README does not mention {example.name}"


class TestExamplesCompile:
    """Examples must at least parse and import-check (full runs are manual)."""

    @pytest.mark.parametrize(
        "example",
        sorted((REPO / "examples").glob("*.py")),
        ids=lambda p: p.name,
    )
    def test_example_compiles(self, example):
        import py_compile

        py_compile.compile(str(example), doraise=True)

    @pytest.mark.parametrize(
        "example",
        sorted((REPO / "examples").glob("*.py")),
        ids=lambda p: p.name,
    )
    def test_example_has_main_guard_and_docstring(self, example):
        text = example.read_text()
        assert '__main__' in text, example.name
        assert text.lstrip().startswith('"""'), example.name
