"""Durable job queue: the at-least-once state machine, end to end.

Covers the lease lifecycle (claim → ack/nack), visibility-timeout
redelivery, backoff scheduling, the DEAD shelf, token fencing against
zombie workers, operator requeue/purge/release, persistence across
reopen, and — the reason the queue exists — a real subprocess crash
mid-claim that must lose nothing.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.serving.jobs import (
    ESCALATION_KIND,
    JobQueue,
    JobQueueError,
    JobState,
    StaleClaimError,
    escalation_payload,
    item_from_payload,
)


class FakeClock:
    """Injectable wall clock so lease expiry tests never sleep."""

    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(tmp_path, clock):
    q = JobQueue(tmp_path / "jobs.db", visibility_timeout_s=10.0,
                 max_attempts=3, backoff_base_s=1.0, time_fn=clock)
    yield q
    q.close()


class TestLifecycle:
    def test_enqueue_claim_ack(self, queue):
        job = queue.enqueue("work", {"n": 1})
        assert job.state == JobState.PENDING
        claimed = queue.claim(n=1, worker="w0")
        assert len(claimed) == 1
        assert claimed[0].state == JobState.CLAIMED
        assert claimed[0].claim_worker == "w0"
        assert claimed[0].claim_token
        done = queue.ack(claimed[0].job_id, claimed[0].claim_token)
        assert done.state == JobState.DONE
        assert queue.counts()[JobState.DONE] == 1

    def test_claim_is_fifo_and_bounded(self, queue):
        ids = [queue.enqueue("work", {"n": i}).job_id for i in range(5)]
        first = queue.claim(n=2)
        assert [j.job_id for j in first] == ids[:2]
        rest = queue.claim(n=10)
        assert [j.job_id for j in rest] == ids[2:]
        assert queue.claim(n=1) == []

    def test_claim_filters_by_kind(self, queue):
        queue.enqueue("alpha", {})
        beta = queue.enqueue("beta", {})
        claimed = queue.claim(kinds=["beta"], n=5)
        assert [j.job_id for j in claimed] == [beta.job_id]

    def test_nack_schedules_backoff_then_redelivers(self, queue, clock):
        job = queue.enqueue("work", {})
        c = queue.claim()[0]
        failed = queue.nack(c.job_id, c.claim_token, "boom")
        assert failed.state == JobState.FAILED
        assert failed.attempts == 1
        assert failed.last_error == "boom"
        assert failed.not_before == pytest.approx(clock() + 1.0)  # base * 2^0
        assert queue.claim() == []  # backoff not yet elapsed
        clock.advance(1.1)
        again = queue.claim()
        assert [j.job_id for j in again] == [job.job_id]

    def test_exhausted_attempts_land_on_dead_shelf(self, queue, clock):
        job = queue.enqueue("work", {}, max_attempts=2)
        for expected_state in (JobState.FAILED, JobState.DEAD):
            clock.advance(100.0)
            c = queue.claim()[0]
            after = queue.nack(c.job_id, c.claim_token, "still broken")
            assert after.state == expected_state
        assert queue.claim() == []  # DEAD jobs never redeliver
        assert queue.get(job.job_id).attempts == 2

    def test_not_before_delays_delivery(self, queue, clock):
        queue.enqueue("work", {}, not_before=clock() + 50.0)
        assert queue.claim() == []
        clock.advance(51.0)
        assert len(queue.claim()) == 1


class TestVisibilityTimeout:
    def test_expired_lease_redelivers_with_attempt_counted(self, queue, clock):
        job = queue.enqueue("work", {})
        first = queue.claim(worker="w0")[0]
        assert queue.claim(worker="w1") == []  # lease is live
        clock.advance(10.5)  # past visibility_timeout_s
        second = queue.claim(worker="w1")
        assert [j.job_id for j in second] == [job.job_id]
        assert second[0].attempts == first.attempts + 1
        assert second[0].claim_worker == "w1"
        assert second[0].claim_token != first.claim_token

    def test_poison_job_terminates_in_dead(self, queue, clock):
        """A job whose worker always dies cannot redeliver forever."""
        job = queue.enqueue("work", {}, max_attempts=3)
        for delivery in range(3):  # the budget: three deliveries
            claimed = queue.claim(worker="doomed")
            assert len(claimed) == 1
            assert claimed[0].attempts == delivery
            clock.advance(11.0)  # worker dies, lease lapses
        # the next claim buries the spent job instead of redelivering
        assert queue.claim(worker="doomed") == []
        assert queue.counts()[JobState.DEAD] == 1
        assert queue.get(job.job_id).attempts == 3

    def test_extend_keeps_lease_alive(self, queue, clock):
        queue.enqueue("work", {})
        c = queue.claim(worker="w0")[0]
        clock.advance(8.0)
        queue.extend(c.job_id, c.claim_token, 20.0)
        clock.advance(5.0)  # past original deadline, inside extension
        assert queue.claim(worker="w1") == []
        done = queue.ack(c.job_id, c.claim_token)
        assert done.state == JobState.DONE


class TestTokenFencing:
    def test_stale_ack_after_redelivery_is_refused(self, queue, clock):
        queue.enqueue("work", {})
        old = queue.claim(worker="w0")[0]
        clock.advance(11.0)
        new = queue.claim(worker="w1")[0]
        with pytest.raises(StaleClaimError):
            queue.ack(old.job_id, old.claim_token)
        # the live lease still completes
        assert queue.ack(new.job_id, new.claim_token).state == JobState.DONE

    def test_double_ack_is_refused(self, queue):
        queue.enqueue("work", {})
        c = queue.claim()[0]
        queue.ack(c.job_id, c.claim_token)
        with pytest.raises(StaleClaimError):
            queue.ack(c.job_id, c.claim_token)

    def test_stale_nack_is_refused(self, queue, clock):
        queue.enqueue("work", {})
        old = queue.claim()[0]
        clock.advance(11.0)
        queue.claim()  # redelivered under a new token
        with pytest.raises(StaleClaimError):
            queue.nack(old.job_id, old.claim_token, "late")


class TestOperatorActions:
    def test_requeue_dead_job(self, queue, clock):
        queue.enqueue("work", {}, max_attempts=1)
        c = queue.claim()[0]
        assert queue.nack(c.job_id, c.claim_token, "x").state == JobState.DEAD
        revived = queue.requeue(c.job_id)
        assert revived.state == JobState.PENDING
        assert revived.attempts == 0
        assert len(queue.claim()) == 1

    def test_requeue_done_job_is_an_error(self, queue):
        queue.enqueue("work", {})
        c = queue.claim()[0]
        queue.ack(c.job_id, c.claim_token)
        with pytest.raises(JobQueueError):
            queue.requeue(c.job_id)

    def test_release_breaks_only_that_workers_leases(self, queue):
        queue.enqueue("work", {"n": 0})
        queue.enqueue("work", {"n": 1})
        a = queue.claim(worker="shard-0")[0]
        b = queue.claim(worker="shard-1")[0]
        assert queue.release("shard-0") == 1
        assert queue.get(a.job_id).state == JobState.PENDING
        assert queue.get(b.job_id).state == JobState.CLAIMED
        # released jobs are immediately claimable; old lease is fenced
        re = queue.claim(worker="shard-1")
        assert [j.job_id for j in re] == [a.job_id]
        with pytest.raises(StaleClaimError):
            queue.ack(a.job_id, a.claim_token)

    def test_purge(self, queue):
        queue.enqueue("work", {})
        c = queue.claim()[0]
        queue.ack(c.job_id, c.claim_token)
        queue.enqueue("work", {})
        assert queue.purge([JobState.DONE]) == 1
        assert queue.counts()[JobState.DONE] == 0
        assert queue.counts()[JobState.PENDING] == 1
        with pytest.raises(ValueError):
            queue.purge(["NOT_A_STATE"])


class TestPersistence:
    def test_jobs_survive_reopen(self, tmp_path, clock):
        path = tmp_path / "jobs.db"
        with JobQueue(path, time_fn=clock) as q:
            q.enqueue("work", {"payload": [1, 2, 3]})
        with JobQueue(path, time_fn=clock) as q:
            jobs = q.list_jobs()
            assert len(jobs) == 1
            assert jobs[0].payload == {"payload": [1, 2, 3]}
            assert len(q.claim()) == 1

    def test_concurrent_claimers_never_double_claim(self, tmp_path):
        q = JobQueue(tmp_path / "jobs.db", visibility_timeout_s=60.0)
        n_jobs = 40
        for i in range(n_jobs):
            q.enqueue("work", {"n": i})
        seen: list[int] = []
        lock = threading.Lock()

        def worker(name: str) -> None:
            while True:
                got = q.claim(n=3, worker=name)
                if not got:
                    return
                with lock:
                    seen.extend(j.job_id for j in got)
                for j in got:
                    q.ack(j.job_id, j.claim_token)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert sorted(seen) == list(range(1, n_jobs + 1))  # each exactly once
        assert q.counts()[JobState.DONE] == n_jobs
        q.close()


CRASH_WORKER = r"""
import sys, os, json
sys.path.insert(0, {src!r})
from repro.serving.jobs import JobQueue

q = JobQueue({db!r}, visibility_timeout_s=0.5)
claimed = q.claim(n={n_claim}, worker="crasher")
print(json.dumps([j.job_id for j in claimed]), flush=True)
# simulate a hard crash mid-claim: no ack, no nack, no close, no cleanup
os._exit(1)
"""


class TestCrashRecovery:
    """The at-least-once proof: a process dying mid-claim loses nothing."""

    def test_subprocess_crash_mid_claim_redelivers_every_job(self, tmp_path):
        src = str(Path(__file__).resolve().parents[2] / "src")
        db = str(tmp_path / "jobs.db")
        with JobQueue(db, visibility_timeout_s=0.5) as q:
            ids = {q.enqueue("work", {"n": i}).job_id for i in range(6)}

        script = CRASH_WORKER.format(src=src, db=db, n_claim=4)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 1  # it really did die
        crashed_ids = set(json.loads(proc.stdout))
        assert len(crashed_ids) == 4

        # reopen from the survivor's side: the crashed claims are leases
        # that lapse, after which every job redelivers exactly until DONE
        import time as _time

        with JobQueue(db, visibility_timeout_s=0.5) as q:
            counts = q.counts()
            assert counts[JobState.CLAIMED] == 4  # leases visible post-crash
            deadline = _time.time() + 30.0
            done: set[int] = set()
            while len(done) < len(ids) and _time.time() < deadline:
                for job in q.claim(n=10, worker="survivor"):
                    q.ack(job.job_id, job.claim_token)
                    done.add(job.job_id)
                _time.sleep(0.05)
            assert done == ids  # no job silently lost, none double-DONE
            final = q.counts()
            assert final[JobState.DONE] == len(ids)
            assert final[JobState.CLAIMED] == 0
            assert final[JobState.DEAD] == 0


class TestEscalationPayloadCodec:
    def test_roundtrip_is_bit_exact(self, trained, corpus):
        from repro.core.framework import Diagnosis
        from repro.serving.escalation import EscalationItem

        run = corpus["holdout"][0]
        item = EscalationItem(
            run=run,
            diagnosis=Diagnosis(label="membw", confidence=0.42),
            uncertainty=0.58,
            threshold=0.5,
        )
        payload = escalation_payload(item)
        json.dumps(payload)  # must be JSON-serializable as-is
        back = item_from_payload(payload)
        import numpy as np

        # telemetry matrices carry NaNs (missing samples); byte-level
        # equality is asserted via the fingerprint below
        assert np.array_equal(back.run.data, run.data, equal_nan=True)
        assert back.run.app == run.app
        assert back.run.node_id == run.node_id
        assert back.run.metric_names == run.metric_names
        assert back.diagnosis.label == "membw"
        assert back.diagnosis.confidence == pytest.approx(0.42)
        from repro.core.persistence import run_fingerprint

        assert run_fingerprint(back.run) == run_fingerprint(run)

    def test_escalation_queue_flushes_to_store(self, tmp_path, corpus):
        from repro.core.framework import Diagnosis
        from repro.serving.escalation import EscalationQueue

        store = JobQueue(tmp_path / "jobs.db")
        queue = EscalationQueue(store=store)
        run = corpus["holdout"][0]
        assert queue.offer_forced(run, Diagnosis(label="x", confidence=0.0))
        assert queue.offer_forced(run, Diagnosis(label="y", confidence=0.1))
        assert len(queue) == 2
        assert queue.flush_to_store() == 2
        assert len(queue) == 0
        jobs = store.list_jobs(kind=ESCALATION_KIND)
        assert len(jobs) == 2
        assert item_from_payload(jobs[0].payload).diagnosis.label == "x"
        store.close()

    def test_flush_without_store_raises(self):
        from repro.serving.escalation import EscalationQueue

        with pytest.raises(RuntimeError):
            EscalationQueue().flush_to_store()
