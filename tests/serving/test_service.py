"""Tests for the DiagnosisService façade: cache, hot swap, refresh."""

import copy

import pytest

from repro.serving.registry import ModelRegistry
from repro.serving.service import DiagnosisService


@pytest.fixture()
def registry(trained, tmp_path):
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(trained, tag="seed")
    return registry


class TestServing:
    def test_matches_offline_diagnose(self, registry, trained, corpus):
        pool = corpus["pool"][:6]
        with DiagnosisService(registry, max_linger_s=0.01) as service:
            served = [service.diagnose(run) for run in pool]
        offline = trained.diagnose(pool)
        assert [d.label for d in served] == [d.label for d in offline]
        assert [d.confidence for d in served] == pytest.approx(
            [d.confidence for d in offline]
        )

    def test_diagnose_many_matches_submit(self, registry, corpus):
        pool = corpus["pool"][:6]
        with DiagnosisService(registry, cache_size=0) as service:
            bulk = service.diagnose_many(pool)
            single = [service.submit(run).result(timeout=5.0) for run in pool]
        assert [d.label for d in bulk] == [d.label for d in single]

    def test_unstarted_service_rejects_requests(self, registry, corpus):
        service = DiagnosisService(registry)
        with pytest.raises(RuntimeError, match="not started"):
            service.diagnose(corpus["pool"][0])
        with pytest.raises(RuntimeError, match="not started"):
            _ = service.version


class TestResultCache:
    def test_repeat_run_hits_cache(self, registry, corpus):
        run = corpus["pool"][0]
        with DiagnosisService(registry, max_linger_s=0.01) as service:
            first = service.diagnose(run)
            again = service.diagnose(run)
        assert again == first
        snap = service.stats.snapshot()
        assert snap["cache_hits"] == 1
        # the second request never reached the scorer
        assert sum(
            size * n for size, n in snap["batch_size_histogram"].items()
        ) == 1

    def test_cache_respects_capacity(self, registry, corpus):
        pool = corpus["pool"][:4]
        with DiagnosisService(registry, cache_size=2) as service:
            service.diagnose_many(pool)
            assert len(service._cache) == 2

    def test_cache_disabled(self, registry, corpus):
        run = corpus["pool"][0]
        with DiagnosisService(registry, cache_size=0) as service:
            service.diagnose(run)
            service.diagnose(run)
        assert service.stats.snapshot()["cache_hits"] == 0

    def test_stats_parity_between_submit_and_bulk_paths(self, registry, corpus):
        """Regression: request/cache-hit accounting must be path-independent."""
        pool = corpus["pool"][:5]
        repeats = pool[:2]
        with DiagnosisService(registry, max_linger_s=0.01) as via_submit:
            for run in pool:
                via_submit.submit(run).result(timeout=5.0)
            for run in repeats:  # now cached
                via_submit.submit(run).result(timeout=5.0)
            snap_submit = via_submit.stats.snapshot()
        with DiagnosisService(registry, max_linger_s=0.01) as via_bulk:
            via_bulk.diagnose_many(pool)
            via_bulk.diagnose_many(repeats)
            snap_bulk = via_bulk.stats.snapshot()
        expected = len(pool) + len(repeats)
        assert snap_submit["requests"] == snap_bulk["requests"] == expected
        assert (
            snap_submit["cache_hits"] == snap_bulk["cache_hits"] == len(repeats)
        )


class TestHotSwap:
    def test_swap_mid_stream_keeps_queued_requests(self, registry, trained, corpus):
        grown = copy.deepcopy(trained)
        extra = corpus["pool"][:4]
        grown.absorb(extra, [r.label for r in extra])
        v2 = registry.publish(grown, activate=False)

        pool = corpus["pool"] + corpus["holdout"]
        # a generous linger keeps requests queued while we swap underneath
        with DiagnosisService(
            registry, max_batch=4, max_linger_s=0.25, cache_size=0
        ) as service:
            assert service.version.version_id == "v0001"
            futures = [service.submit(run) for run in pool]
            swapped = service.swap(v2.version_id)
            results = [f.result(timeout=10.0) for f in futures]
        assert swapped.version_id == "v0002"
        assert service.version.version_id == "v0002"
        assert len(results) == len(pool)
        assert all(r.label for r in results)
        assert service.stats.snapshot()["model_swaps"] == 1

    def test_refresh_follows_registry_pointer(self, registry, trained, corpus):
        with DiagnosisService(registry, max_linger_s=0.01) as service:
            assert service.refresh() is False  # pointer unchanged
            registry.publish(copy.deepcopy(trained), tag="next")
            assert service.refresh() is True
            assert service.version.version_id == "v0002"
            # still serves after the swap
            assert service.diagnose(corpus["pool"][0]).label

    def test_swap_clears_cache(self, registry, trained, corpus):
        run = corpus["pool"][0]
        with DiagnosisService(registry, max_linger_s=0.01) as service:
            service.diagnose(run)
            registry.publish(copy.deepcopy(trained))
            service.refresh()
            assert len(service._cache) == 0

    def test_rollback_then_refresh_restores_old_version(
        self, registry, trained, corpus
    ):
        registry.publish(copy.deepcopy(trained))
        with DiagnosisService(registry, max_linger_s=0.01) as service:
            assert service.version.version_id == "v0002"
            registry.rollback()
            assert service.refresh() is True
            assert service.version.version_id == "v0001"
            assert service.diagnose(corpus["pool"][0]).label


class TestShutdownIdempotency:
    def test_stop_twice_is_a_noop(self, registry):
        service = DiagnosisService(registry)
        service.start()
        service.stop()
        service.stop()  # must not raise
        assert not service.ready()

    def test_stop_without_start_is_a_noop(self, registry):
        DiagnosisService(registry).stop()

    def test_concurrent_stop_callers_all_return(self, registry, corpus):
        import threading

        service = DiagnosisService(registry)
        service.start()
        service.diagnose_many(corpus["holdout"][:4])
        threads = [threading.Thread(target=service.stop) for _ in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
            assert not t.is_alive()
        assert not service.ready()

    def test_restart_after_stop_serves_again(self, registry, corpus):
        service = DiagnosisService(registry)
        service.start()
        service.stop()
        service.start()
        try:
            assert service.diagnose(corpus["holdout"][0]).label
        finally:
            service.stop()


class TestEscalationVisibility:
    def test_health_surfaces_escalation_pressure_counters(self, registry):
        from repro.serving.escalation import EscalationQueue

        service = DiagnosisService(
            registry, escalation=EscalationQueue(maxlen=4)
        )
        with service:
            health = service.health()
        assert health["escalation_dropped"] == 0
        assert health["escalation_refused"] == 0
        assert health["escalation_forced"] == 0

    def test_stats_surface_forced_and_refused_escalations(self, registry):
        snap = DiagnosisService(registry).stats.snapshot()
        assert snap["escalations_forced"] == 0
        assert snap["escalations_refused"] == 0


class TestBoundedDiagnose:
    def test_stuck_future_raises_deadline_exceeded(
        self, registry, corpus, monkeypatch
    ):
        from concurrent.futures import Future

        from repro.serving.reliability import DeadlineExceeded

        service = DiagnosisService(registry)
        stuck: Future = Future()
        monkeypatch.setattr(
            service, "submit", lambda run, deadline_s=None: stuck
        )
        with pytest.raises(DeadlineExceeded, match="did not arrive"):
            service.diagnose(corpus["pool"][0], timeout_s=0.05)
        # the abandoned request is cancelled, not leaked
        assert stuck.cancelled()

    def test_timeout_derives_from_configured_deadline(self, registry):
        from repro.serving.reliability import SYNC_WAIT_GRACE_S, sync_wait_s

        service = DiagnosisService(registry, default_deadline_s=2.0)
        derived = sync_wait_s(
            None, service._engine_opts.get("default_deadline_s")
        )
        assert derived == 2.0 + SYNC_WAIT_GRACE_S

    def test_normal_diagnose_still_succeeds(self, registry, corpus):
        with DiagnosisService(registry, max_linger_s=0.01) as service:
            diagnosis = service.diagnose(corpus["pool"][0], timeout_s=10.0)
        assert diagnosis.label
