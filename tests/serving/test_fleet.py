"""Sharded fleet: routing, parity, hot swap, and shard-death chaos.

The two contracts that matter:

* **routing must not change predictions** — fleet diagnoses are
  bit-identical to the single-engine path for the same model version,
  at any shard count;
* **a dying shard loses nothing durable** — its pending futures fail
  with typed errors, its traffic reroutes, and its claimed jobs
  redeliver.
"""

from __future__ import annotations

import threading

import pytest

from repro.serving.escalation import EscalationQueue
from repro.serving.fleet import FleetService, ShardRouter, process_one_retrain
from repro.serving.jobs import (
    ESCALATION_KIND,
    RETRAIN_KIND,
    JobQueue,
    JobState,
)
from repro.serving.registry import ModelRegistry
from repro.serving.reliability import EngineClosedError, ServingError
from repro.serving.service import DiagnosisService


@pytest.fixture(scope="module")
def registry(tmp_path_factory, trained):
    reg = ModelRegistry(tmp_path_factory.mktemp("fleet-registry"))
    reg.publish(trained, tag="fleet-base")
    return reg


class TestShardRouter:
    def test_routing_is_deterministic_and_total(self):
        router = ShardRouter([0, 1, 2, 3])
        first = {node: router.route(node) for node in range(200)}
        again = {node: router.route(node) for node in range(200)}
        assert first == again
        assert set(first.values()) <= {0, 1, 2, 3}

    def test_every_shard_gets_work_at_eclipse_scale(self):
        router = ShardRouter(list(range(8)))
        owners = {router.route(node) for node in range(1488)}
        assert owners == set(range(8))

    def test_down_shard_moves_only_its_keys(self):
        router = ShardRouter([0, 1, 2, 3])
        before = {node: router.route(node) for node in range(500)}
        dead = 2
        after = {node: router.route(node, down={dead}) for node in range(500)}
        for node in before:
            if before[node] != dead:
                assert after[node] == before[node]  # unaffected keys stay put
            else:
                assert after[node] != dead
        assert dead not in set(after.values())

    def test_all_down_raises(self):
        router = ShardRouter([0, 1])
        with pytest.raises(EngineClosedError):
            router.route(7, down={0, 1})

    def test_assignments_groups_in_order(self):
        router = ShardRouter([0, 1])
        groups = router.assignments(list(range(20)))
        flat = sorted(k for keys in groups.values() for k in keys)
        assert flat == list(range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter([])
        with pytest.raises(ValueError):
            ShardRouter([0], vnodes=0)


class TestFleetParity:
    """Acceptance: identical diagnoses across shard counts ∈ {1, 4, 8}."""

    def test_fleet_matches_single_engine_bit_for_bit(self, registry, corpus):
        runs = corpus["holdout"]
        with DiagnosisService(registry, cache_size=0) as single:
            reference = single.diagnose_many(runs)
        for n_shards in (1, 4, 8):
            fleet = FleetService(registry, n_shards=n_shards, cache_size=0)
            with fleet:
                via_submit = [f.result(timeout=30.0) for f in
                              [fleet.submit(r) for r in runs]]
                via_bulk = fleet.diagnose_many(runs)
            for got in (via_submit, via_bulk):
                assert [d.label for d in got] == [d.label for d in reference]
                # confidences must be *identical*, not merely close
                assert [d.confidence for d in got] == [
                    d.confidence for d in reference
                ], f"confidence drift at n_shards={n_shards}"

    def test_same_node_always_lands_on_same_shard(self, registry, corpus):
        fleet = FleetService(registry, n_shards=4)
        run = corpus["holdout"][0]
        shards = {fleet.shard_for(run) for _ in range(10)}
        assert len(shards) == 1


class TestFleetLifecycle:
    def test_health_and_stats_aggregate_across_shards(self, registry, corpus):
        fleet = FleetService(registry, n_shards=3, cache_size=0)
        with fleet:
            fleet.diagnose_many(corpus["holdout"])
            health = fleet.health()
            snap = fleet.stats_snapshot()
        assert health["n_shards"] == 3
        assert health["live_shards"] == [0, 1, 2]
        assert health["down_shards"] == []
        assert len(health["shards"]) == 3
        assert snap["fleet"]["requests"] == len(corpus["holdout"])
        per_shard_requests = sum(
            s["requests"] for s in snap["per_shard"].values()
        )
        assert per_shard_requests == len(corpus["holdout"])

    def test_fleet_wide_hot_swap(self, registry, trained, corpus):
        fleet = FleetService(registry, n_shards=2)
        with fleet:
            v_old = fleet.version.version_id
            assert fleet.refresh() is False  # pointer unmoved
            new = registry.publish(trained, tag="swap-target")
            assert fleet.refresh() is True
            assert fleet.version.version_id == new.version_id
            for shard in fleet.shards.values():
                assert shard.version.version_id == new.version_id
            assert fleet.version.version_id != v_old

    def test_stop_is_idempotent(self, registry):
        fleet = FleetService(registry, n_shards=2)
        fleet.start()
        fleet.stop()
        fleet.stop()  # second stop must be a no-op
        assert not fleet.ready()


class TestShardDeath:
    def test_dead_shard_reroutes_traffic(self, registry, corpus):
        runs = corpus["holdout"]
        fleet = FleetService(registry, n_shards=4, cache_size=0)
        with DiagnosisService(registry, cache_size=0) as single:
            reference = single.diagnose_many(runs)
        with fleet:
            victim = fleet.shard_for(runs[0])
            fleet.shards[victim].stop()  # the shard dies out from under us
            assert fleet.probe() == [victim]
            assert victim in fleet.down_shards
            # every run still scores, identically, via the surviving shards
            got = [f.result(timeout=30.0) for f in [fleet.submit(r) for r in runs]]
            assert [d.label for d in got] == [d.label for d in reference]
            assert [d.confidence for d in got] == [
                d.confidence for d in reference
            ]
            assert fleet.shard_for(runs[0]) != victim

    def test_submit_fails_over_without_probe(self, registry, corpus):
        run = corpus["holdout"][0]
        fleet = FleetService(registry, n_shards=4, cache_size=0)
        with fleet:
            victim = fleet.shard_for(run)
            fleet.shards[victim].stop()
            diagnosis = fleet.submit(run).result(timeout=30.0)  # reroutes inline
            assert diagnosis.label
            assert victim in fleet.down_shards
            assert fleet.reroutes >= 1

    def test_dead_shard_releases_claimed_jobs(self, registry, tmp_path):
        jobs = JobQueue(tmp_path / "jobs.db", visibility_timeout_s=3600.0)
        for i in range(3):
            jobs.enqueue(ESCALATION_KIND, {"n": i})
        fleet = FleetService(registry, n_shards=2, jobs=jobs)
        with fleet:
            victim = 0
            claimed = jobs.claim(n=2, worker=fleet.shard_name(victim))
            assert len(claimed) == 2
            fleet.mark_down(victim)
            # leases broken immediately — not after the 1h visibility timeout
            counts = jobs.counts()
            assert counts[JobState.CLAIMED] == 0
            assert counts[JobState.PENDING] == 3
        jobs.close()

    def test_all_shards_down_raises_typed_error(self, registry, corpus):
        fleet = FleetService(registry, n_shards=2)
        with fleet:
            for shard in fleet.shards.values():
                shard.stop()
            fleet.probe()
            with pytest.raises(EngineClosedError):
                fleet.submit(corpus["holdout"][0])
            assert not fleet.ready()

    def test_revive_returns_shard_to_ring(self, registry, corpus):
        run = corpus["holdout"][0]
        fleet = FleetService(registry, n_shards=2, cache_size=0)
        with fleet:
            victim = fleet.shard_for(run)
            fleet.mark_down(victim)
            assert fleet.shard_for(run) != victim
            fleet.revive_shard(victim)
            assert victim not in fleet.down_shards
            assert fleet.shard_for(run) == victim
            assert fleet.submit(run).result(timeout=30.0).label  # serves again


class TestDurableRetrain:
    def test_escalations_flow_to_store_and_retrain_publishes(
        self, registry, corpus, tmp_path
    ):
        jobs = JobQueue(tmp_path / "jobs.db")
        fleet = FleetService(registry, n_shards=2, jobs=jobs, cache_size=0)
        runs = corpus["pool"][:6]
        with fleet:
            v_before = fleet.version.version_id
            diagnoses = fleet.diagnose_many(runs)
            # discard whatever the adaptive controller escalated on its
            # own, then force-escalate exactly these runs so the durable
            # counts below are deterministic
            fleet.escalation.drain()
            for run, diagnosis in zip(runs, diagnoses):
                fleet.escalation.offer_forced(run, diagnosis)
            assert len(fleet.escalation) == len(runs)
            version = fleet.retrain_and_publish(
                lambda item: item.run.label, tag="durable-retrain"
            )
            assert version is not None
            assert fleet.version.version_id == version.version_id
            assert version.version_id != v_before
        # every escalation job and the retrain order are DONE; nothing stuck
        counts = jobs.counts()
        assert counts[JobState.DONE] == len(runs) + 1
        assert counts[JobState.CLAIMED] == 0
        assert counts[JobState.PENDING] == 0
        jobs.close()

    def test_crashed_annotator_redelivers_the_whole_cycle(
        self, registry, corpus, tmp_path
    ):
        jobs = JobQueue(
            tmp_path / "jobs.db", backoff_base_s=0.0, max_attempts=5
        )
        fleet = FleetService(registry, n_shards=1, jobs=jobs, cache_size=0)
        runs = corpus["pool"][:3]
        with fleet:
            diagnoses = fleet.diagnose_many(runs)
            fleet.escalation.drain()
            for run, diagnosis in zip(runs, diagnoses):
                fleet.escalation.offer_forced(run, diagnosis)

            def crashing_annotator(item):
                raise RuntimeError("annotator died mid-cycle")

            with pytest.raises(RuntimeError):
                fleet.retrain_and_publish(crashing_annotator)
            # nothing was acked: all jobs are redeliverable, none DONE
            counts = jobs.counts()
            assert counts[JobState.DONE] == 0
            assert (
                counts[JobState.PENDING] + counts[JobState.FAILED]
                == len(runs) + 1
            )
            # the retry (a healthy worker) completes the identical cycle
            version = process_one_retrain(
                jobs, registry, lambda item: item.run.label
            )
            assert version is not None
            counts = jobs.counts()
            assert counts[JobState.DONE] == len(runs) + 1
        jobs.close()

    def test_retrain_without_jobs_uses_in_memory_path(self, registry, corpus):
        fleet = FleetService(
            registry, n_shards=2, escalation=EscalationQueue(), cache_size=0
        )
        runs = corpus["pool"][:4]
        with fleet:
            for run, diagnosis in zip(runs, fleet.diagnose_many(runs)):
                fleet.escalation.offer_forced(run, diagnosis)
            version = fleet.retrain_and_publish(lambda item: item.run.label)
            assert version is not None
            assert fleet.version.version_id == version.version_id

    def test_process_one_retrain_with_no_order_is_noop(self, registry, tmp_path):
        jobs = JobQueue(tmp_path / "jobs.db")
        assert process_one_retrain(jobs, registry, lambda i: "x") is None
        jobs.close()

    def test_retrain_order_with_no_escalations_acks_as_noop(
        self, registry, tmp_path
    ):
        jobs = JobQueue(tmp_path / "jobs.db")
        jobs.enqueue(RETRAIN_KIND, {"tag": None})
        assert process_one_retrain(jobs, registry, lambda i: "x") is None
        assert jobs.counts()[JobState.DONE] == 1
        jobs.close()


class TestChaosUnderLoad:
    def test_shard_killed_mid_stream_loses_no_future(self, registry, corpus):
        """Kill a shard while requests are in flight: every future resolves
        (diagnosis or typed ServingError) — the engine invariant holds
        fleet-wide."""
        runs = corpus["holdout"] * 3
        fleet = FleetService(
            registry, n_shards=4, cache_size=0, max_linger_s=0.02
        )
        with fleet:
            victim = fleet.shard_for(runs[0])
            futures = []
            killer = threading.Thread(
                target=lambda: fleet.mark_down(victim)
            )
            for i, run in enumerate(runs):
                futures.append(fleet.submit(run))
                if i == len(runs) // 3:
                    killer.start()
            killer.join(10.0)
            resolved_ok, resolved_err = 0, 0
            for f in futures:
                try:
                    assert f.result(timeout=10.0).label
                    resolved_ok += 1
                except ServingError:
                    resolved_err += 1
            assert resolved_ok + resolved_err == len(futures)
            assert resolved_ok > 0  # the survivors kept serving


class TestBoundedFleetDiagnose:
    def test_stuck_future_raises_deadline_exceeded(
        self, registry, corpus, monkeypatch
    ):
        from concurrent.futures import Future

        from repro.serving.reliability import DeadlineExceeded

        fleet = FleetService(registry, n_shards=2, cache_size=0)
        stuck: Future = Future()
        monkeypatch.setattr(
            fleet, "submit", lambda run, deadline_s=None: stuck
        )
        with pytest.raises(DeadlineExceeded, match="did not arrive"):
            fleet.diagnose(corpus["pool"][0], timeout_s=0.05)
        assert stuck.cancelled()

    def test_diagnose_with_explicit_timeout_succeeds(self, registry, corpus):
        with FleetService(registry, n_shards=2, cache_size=0) as fleet:
            diagnosis = fleet.diagnose(corpus["pool"][0], timeout_s=10.0)
        assert diagnosis.label
