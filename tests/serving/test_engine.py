"""Tests for the micro-batching inference engine (counting-stub scorer)."""

import math
import threading
import time

import pytest

from repro.core.framework import Diagnosis
from repro.serving.engine import BackpressureError, MicroBatcher
from repro.serving.reliability import EngineClosedError, PredictionMismatchError
from repro.serving.stats import ServiceStats


class CountingModel:
    """Stub scorer: records every batch it is asked to score."""

    def __init__(self, gate: threading.Event | None = None, label: str = "healthy"):
        self.calls: list[int] = []
        self.gate = gate
        self.started = threading.Event()
        self.label = label

    def __call__(self, runs):
        self.started.set()
        if self.gate is not None:
            assert self.gate.wait(5.0)
        self.calls.append(len(runs))
        return [Diagnosis(label=self.label, confidence=0.9) for _ in runs]


class TestCoalescing:
    def test_submissions_coalesce_into_few_model_calls(self):
        """N single submissions -> at most ceil(N/max_batch) scoring calls."""
        gate = threading.Event()
        model = CountingModel(gate=gate)
        n, max_batch = 24, 8
        with MicroBatcher(model, max_batch=max_batch, max_linger_s=0.01) as engine:
            # park the dispatcher on a sentinel batch so the real requests
            # queue up behind it and must be coalesced
            sentinel = engine.submit(object())
            assert model.started.wait(5.0)
            futures = [engine.submit(object()) for _ in range(n)]
            gate.set()
            sentinel.result(timeout=5.0)
            results = [f.result(timeout=5.0) for f in futures]
        assert len(results) == n
        assert all(d.label == "healthy" for d in results)
        coalesced = model.calls[1:]  # drop the sentinel batch
        assert len(coalesced) <= math.ceil(n / max_batch)
        assert sum(coalesced) == n
        assert all(size <= max_batch for size in coalesced)

    def test_results_map_back_to_submissions(self):
        model = CountingModel()

        def echo(runs):
            return [Diagnosis(label=f"r{run}", confidence=1.0) for run in runs]

        with MicroBatcher(echo, max_batch=4, max_linger_s=0.01) as engine:
            futures = [engine.submit(i) for i in range(10)]
            labels = [f.result(timeout=5.0) for f in futures]
        assert [d.label for d in labels] == [f"r{i}" for i in range(10)]

    def test_diagnose_many_fast_path_chunks(self):
        model = CountingModel()
        with MicroBatcher(model, max_batch=8) as engine:
            out = engine.diagnose_many(list(range(20)))
        assert len(out) == 20
        assert model.calls == [8, 8, 4]

    def test_stats_record_batches(self):
        stats = ServiceStats()
        model = CountingModel()
        with MicroBatcher(model, max_batch=8, stats=stats) as engine:
            engine.diagnose_many(list(range(20)))
        snap = stats.snapshot()
        assert snap["requests"] == 20
        assert snap["batches"] == 3
        assert snap["batch_size_histogram"] == {4: 1, 8: 2}
        assert snap["mean_batch_size"] == pytest.approx(20 / 3)
        assert snap["mean_batch_latency_s"] >= 0.0


class TestBackpressure:
    def test_error_policy_raises_when_full(self):
        gate = threading.Event()
        model = CountingModel(gate=gate)
        engine = MicroBatcher(
            model, max_batch=1, max_linger_s=0.0, queue_size=2, policy="error"
        )
        try:
            engine.submit(object())  # being scored (parked on the gate)
            assert model.started.wait(5.0)
            engine.submit(object())
            engine.submit(object())
            with pytest.raises(BackpressureError, match="queue full"):
                for _ in range(8):  # the dispatcher may drain one slot
                    engine.submit(object())
        finally:
            gate.set()
            engine.close()

    def test_closed_engine_rejects_submissions(self):
        engine = MicroBatcher(CountingModel())
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(object())
        with pytest.raises(RuntimeError, match="closed"):
            engine.diagnose_many([object()])

    def test_close_drains_pending_requests(self):
        model = CountingModel()
        engine = MicroBatcher(model, max_batch=4, max_linger_s=0.05)
        futures = [engine.submit(object()) for _ in range(9)]
        engine.close()
        assert all(f.done() for f in futures)
        assert sum(model.calls) == 9

    def test_close_is_typed(self):
        engine = MicroBatcher(CountingModel())
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit(object())


class TestFlushWaitsForInflight:
    def test_flush_blocks_while_a_dispatched_batch_is_scoring(self):
        """Regression: flush must cover dispatched-but-unfinished requests.

        The queue is empty the moment the dispatcher pops the batch, but
        the request is still inside ``predict_fn`` — flush returning
        there would let close() abandon it.
        """
        gate = threading.Event()
        model = CountingModel(gate=gate)
        engine = MicroBatcher(model, max_batch=4, max_linger_s=0.0)
        try:
            future = engine.submit(object())
            assert model.started.wait(5.0)  # dispatched: queue is empty now
            assert engine.queue_depth == 0
            assert engine.pending == 1
            with pytest.raises(TimeoutError, match="did not drain"):
                engine.flush(timeout=0.2)
            gate.set()
            engine.flush(timeout=5.0)
            assert future.done()
            assert future.result(timeout=30.0).label == "healthy"
        finally:
            gate.set()
            engine.close()


class TestFailurePropagation:
    def test_truncating_predict_fails_every_future(self):
        """Regression: a short result list must not hang trailing futures."""
        def truncating(runs):
            return [Diagnosis(label="ok", confidence=1.0) for _ in runs[:-1]]

        with MicroBatcher(truncating, max_batch=4, max_linger_s=0.01) as engine:
            futures = [engine.submit(object()) for _ in range(4)]
            for future in futures:
                with pytest.raises(PredictionMismatchError, match="3 diagnoses"):
                    future.result(timeout=5.0)

    def test_overlong_predict_fails_every_future(self):
        def padding(runs):
            return [Diagnosis(label="ok", confidence=1.0)] * (len(runs) + 2)

        with MicroBatcher(padding, max_batch=4, max_linger_s=0.01) as engine:
            with pytest.raises(PredictionMismatchError):
                engine.submit(object()).result(timeout=5.0)

    def test_truncating_predict_raises_on_bulk_path(self):
        def truncating(runs):
            return [Diagnosis(label="ok", confidence=1.0) for _ in runs[:-1]]

        with MicroBatcher(truncating, max_batch=4) as engine:
            with pytest.raises(PredictionMismatchError):
                engine.diagnose_many([object()] * 3)


    def test_scorer_exception_reaches_every_waiter(self):
        def boom(runs):
            raise ValueError("bad batch")

        with MicroBatcher(boom, max_batch=4, max_linger_s=0.01) as engine:
            futures = [engine.submit(object()) for _ in range(3)]
            for future in futures:
                with pytest.raises(ValueError, match="bad batch"):
                    future.result(timeout=5.0)

    def test_engine_survives_a_failing_batch(self):
        state = {"fail": True}

        def flaky(runs):
            if state["fail"]:
                state["fail"] = False
                raise RuntimeError("transient")
            return [Diagnosis(label="ok", confidence=1.0) for _ in runs]

        with MicroBatcher(flaky, max_batch=4, max_linger_s=0.01) as engine:
            with pytest.raises(RuntimeError):
                engine.submit(object()).result(timeout=5.0)
            assert engine.submit(object()).result(timeout=5.0).label == "ok"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_batch": 0}, "max_batch"),
            ({"max_linger_s": -1.0}, "max_linger_s"),
            ({"queue_size": 0}, "queue_size"),
            ({"policy": "drop"}, "policy"),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            MicroBatcher(CountingModel(), **kwargs)


class TestIdempotentClose:
    def test_double_close_is_a_noop(self):
        engine = MicroBatcher(CountingModel(), max_batch=4)
        engine.close()
        engine.close()  # second close must not raise or deadlock

    def test_concurrent_close_from_many_threads(self):
        """Racing closers must all return; the engine ends closed exactly
        once (the close lock serializes the drain/join sequence)."""
        model = CountingModel()
        engine = MicroBatcher(model, max_batch=4, max_linger_s=0.01)
        futures = [engine.submit(i) for i in range(8)]
        threads = [
            threading.Thread(target=engine.close) for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
            assert not t.is_alive()
        # close drained the pending work before shutting down
        assert all(f.result(timeout=5.0).label == "healthy" for f in futures)
        with pytest.raises(EngineClosedError):
            engine.submit(99)

    def test_close_after_failed_batch_still_idempotent(self):
        def exploding(runs):
            raise RuntimeError("boom")

        engine = MicroBatcher(exploding, max_batch=2, max_linger_s=0.01)
        future = engine.submit(1)
        with pytest.raises(RuntimeError):
            future.result(timeout=5.0)
        engine.close()
        engine.close()
