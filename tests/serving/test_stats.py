"""Tests for the service counters."""

import threading

import pytest

from repro.serving.stats import ServiceStats


class TestSnapshot:
    def test_fresh_snapshot_is_zeroed(self):
        snap = ServiceStats().snapshot()
        assert snap["requests"] == 0
        assert snap["batches"] == 0
        assert snap["batch_size_histogram"] == {}
        assert snap["mean_batch_size"] == 0.0
        assert snap["mean_batch_latency_s"] == 0.0

    def test_counters_accumulate(self):
        stats = ServiceStats()
        stats.record_request(3)
        stats.record_cache_hit()
        stats.record_escalation(2)
        stats.record_swap()
        stats.record_batch(4, 0.5)
        stats.record_batch(2, 1.5)
        snap = stats.snapshot()
        assert snap["requests"] == 3
        assert snap["cache_hits"] == 1
        assert snap["escalations"] == 2
        assert snap["model_swaps"] == 1
        assert snap["batches"] == 2
        assert snap["batch_size_histogram"] == {2: 1, 4: 1}
        assert snap["mean_batch_size"] == pytest.approx(3.0)
        assert snap["mean_batch_latency_s"] == pytest.approx(1.0)
        assert snap["max_batch_latency_s"] == pytest.approx(1.5)

    def test_reset_zeroes_everything(self):
        stats = ServiceStats()
        stats.record_request(5)
        stats.record_batch(5, 0.1)
        stats.reset()
        assert stats.snapshot()["requests"] == 0
        assert stats.snapshot()["batches"] == 0

    def test_concurrent_increments_are_not_lost(self):
        stats = ServiceStats()

        def hammer():
            for _ in range(500):
                stats.record_request()
                stats.record_batch(1, 0.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        snap = stats.snapshot()
        assert snap["requests"] == 2000
        assert snap["batches"] == 2000
        assert snap["batch_size_histogram"] == {1: 2000}


class TestEscalationPressureCounters:
    def test_forced_and_refused_accumulate(self):
        stats = ServiceStats()
        stats.record_forced_escalation()
        stats.record_forced_escalation()
        stats.record_refused_escalation()
        snap = stats.snapshot()
        assert snap["escalations_forced"] == 2
        assert snap["escalations_refused"] == 1
        stats.reset()
        snap = stats.snapshot()
        assert snap["escalations_forced"] == 0
        assert snap["escalations_refused"] == 0


class TestMerge:
    def test_merge_sums_counters_and_rederives_means(self):
        a, b = ServiceStats(), ServiceStats()
        a.record_request(2)
        a.record_batch(4, 0.2)
        a.record_cache_hit()
        b.record_request(3)
        b.record_batch(2, 0.6)
        b.record_batch(2, 0.4)
        merged = ServiceStats.merge([a.snapshot(), b.snapshot()])
        assert merged["requests"] == 5
        assert merged["cache_hits"] == 1
        assert merged["batches"] == 3
        assert merged["batch_size_histogram"] == {2: 2, 4: 1}
        assert merged["mean_batch_size"] == pytest.approx(8 / 3)
        assert merged["mean_batch_latency_s"] == pytest.approx(0.4)
        assert merged["max_batch_latency_s"] == pytest.approx(0.6)

    def test_merge_of_nothing_is_zeroed(self):
        merged = ServiceStats.merge([])
        assert merged["requests"] == 0
        assert merged["batch_size_histogram"] == {}

    def test_merge_single_snapshot_is_identity(self):
        stats = ServiceStats()
        stats.record_request(7)
        stats.record_batch(7, 0.1)
        snap = stats.snapshot()
        assert ServiceStats.merge([snap]) == snap
