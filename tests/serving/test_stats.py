"""Tests for the service counters."""

import threading

import pytest

from repro.serving.stats import ServiceStats


class TestSnapshot:
    def test_fresh_snapshot_is_zeroed(self):
        snap = ServiceStats().snapshot()
        assert snap["requests"] == 0
        assert snap["batches"] == 0
        assert snap["batch_size_histogram"] == {}
        assert snap["mean_batch_size"] == 0.0
        assert snap["mean_batch_latency_s"] == 0.0

    def test_counters_accumulate(self):
        stats = ServiceStats()
        stats.record_request(3)
        stats.record_cache_hit()
        stats.record_escalation(2)
        stats.record_swap()
        stats.record_batch(4, 0.5)
        stats.record_batch(2, 1.5)
        snap = stats.snapshot()
        assert snap["requests"] == 3
        assert snap["cache_hits"] == 1
        assert snap["escalations"] == 2
        assert snap["model_swaps"] == 1
        assert snap["batches"] == 2
        assert snap["batch_size_histogram"] == {2: 1, 4: 1}
        assert snap["mean_batch_size"] == pytest.approx(3.0)
        assert snap["mean_batch_latency_s"] == pytest.approx(1.0)
        assert snap["max_batch_latency_s"] == pytest.approx(1.5)

    def test_reset_zeroes_everything(self):
        stats = ServiceStats()
        stats.record_request(5)
        stats.record_batch(5, 0.1)
        stats.reset()
        assert stats.snapshot()["requests"] == 0
        assert stats.snapshot()["batches"] == 0

    def test_concurrent_increments_are_not_lost(self):
        stats = ServiceStats()

        def hammer():
            for _ in range(500):
                stats.record_request()
                stats.record_batch(1, 0.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = stats.snapshot()
        assert snap["requests"] == 2000
        assert snap["batches"] == 2000
        assert snap["batch_size_histogram"] == {1: 2000}
