"""Tests for the versioned on-disk model registry."""

import copy
import json

import pytest

from repro.serving.registry import ModelRegistry, RegistryError


class TestPublishLoad:
    def test_publish_load_roundtrip(self, trained, corpus, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        version = registry.publish(trained, tag="first")
        assert version.version_id == "v0001"
        restored, loaded_version = registry.load("current")
        assert loaded_version.version_id == "v0001"
        pool = corpus["pool"][:5]
        assert [d.label for d in restored.diagnose(pool)] == [
            d.label for d in trained.diagnose(pool)
        ]

    def test_manifest_contents(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        version = registry.publish(trained, tag="audit")
        manifest = json.loads((version.path / "manifest.json").read_text())
        assert manifest["tag"] == "audit"
        assert manifest["format_version"] == 1
        assert manifest["n_features"] == 30
        assert manifest["config"]["model"] == "random_forest"
        assert "healthy" in manifest["classes"]
        assert manifest["train_fingerprint"] != "untrained"
        assert manifest["created_at"] > 0

    def test_version_ids_increment(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        ids = [registry.publish(trained).version_id for _ in range(3)]
        assert ids == ["v0001", "v0002", "v0003"]

    def test_fingerprint_changes_after_absorb(self, trained, corpus, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        v1 = registry.publish(trained)
        grown = copy.deepcopy(trained)
        extra = corpus["pool"][:3]
        grown.absorb(extra, [r.label for r in extra])
        v2 = registry.publish(grown)
        assert (
            v1.manifest["train_fingerprint"] != v2.manifest["train_fingerprint"]
        )


class TestResolve:
    def test_latest_and_tag(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained, tag="a")
        registry.publish(trained, tag="b")
        assert registry.resolve("latest").version_id == "v0002"
        assert registry.resolve("a").version_id == "v0001"
        assert registry.resolve("v0001").version_id == "v0001"

    def test_tag_resolves_to_most_recent(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained, tag="nightly")
        registry.publish(trained, tag="nightly")
        assert registry.resolve("nightly").version_id == "v0002"

    def test_unknown_ref_rejected(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        with pytest.raises(RegistryError, match="unknown version"):
            registry.resolve("v9999")

    def test_empty_registry_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="no published"):
            registry.resolve("current")


class TestPointer:
    def test_publish_activates_by_default(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        registry.publish(trained)
        assert registry.current_id() == "v0002"

    def test_publish_without_activate(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        registry.publish(trained, activate=False)
        assert registry.current_id() == "v0001"

    def test_rollback_steps_back_one(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        registry.publish(trained)
        registry.publish(trained)
        assert registry.rollback().version_id == "v0002"
        assert registry.current_id() == "v0002"
        assert registry.rollback().version_id == "v0001"

    def test_rollback_to_explicit_ref(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained, tag="good")
        registry.publish(trained)
        assert registry.rollback("good").version_id == "v0001"

    def test_rollback_past_oldest_rejected(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        with pytest.raises(RegistryError, match="oldest"):
            registry.rollback()

    def test_rollback_leaves_versions_intact(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        registry.publish(trained)
        registry.rollback()
        assert [v.version_id for v in registry.list_versions()] == [
            "v0001",
            "v0002",
        ]
        # and the rolled-back-from version still loads
        fw, _ = registry.load("v0002")
        assert fw.model is not None

    def test_no_staging_leftovers(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        leftovers = [
            p for p in registry.versions_dir.iterdir() if p.name.startswith(".")
        ]
        assert leftovers == []


class TestConcurrentWriters:
    """Satellite: two writers racing on the atomic CURRENT pointer must
    leave the registry with exactly one valid, loadable current version."""

    def test_racing_publishers_get_distinct_versions(self, trained, tmp_path):
        import threading

        registry = ModelRegistry(tmp_path / "reg")
        results: list = [None] * 4
        barrier = threading.Barrier(4)

        def publisher(slot: int) -> None:
            barrier.wait(timeout=30.0)
            results[slot] = registry.publish(trained, tag=f"racer-{slot}")

        threads = [
            threading.Thread(target=publisher, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
            assert not t.is_alive()
        ids = [v.version_id for v in results]
        assert len(set(ids)) == 4  # no publisher stole another's slot
        assert sorted(ids) == ["v0001", "v0002", "v0003", "v0004"]
        # CURRENT points at exactly one of the published versions...
        current = registry.current_id()
        assert current in ids
        # ...which loads cleanly, as does every other version
        for version_id in ids:
            fw, _ = registry.load(version_id)
            assert fw.model is not None
        # and the race left no staging or tmp litter behind
        litter = [
            p.name
            for p in registry.versions_dir.iterdir()
            if p.name.startswith(".")
        ]
        assert litter == []

    def test_publish_racing_rollback_keeps_pointer_valid(
        self, trained, tmp_path
    ):
        import threading

        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained, tag="old")
        registry.publish(trained, tag="newer")
        barrier = threading.Barrier(2)
        errors: list = []

        def publish():
            barrier.wait(timeout=30.0)
            try:
                registry.publish(trained, tag="raced")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        def rollback():
            barrier.wait(timeout=30.0)
            try:
                registry.rollback()
            except RegistryError:
                pass  # acceptable: the race can move the pointer first

        threads = [
            threading.Thread(target=publish),
            threading.Thread(target=rollback),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
            assert not t.is_alive()
        assert not errors
        # whichever writer won, the pointer names a loadable version
        current = registry.current_id()
        assert current is not None
        fw, version = registry.load("current")
        assert version.version_id == current
        assert fw.model is not None


class TestInjectableClock:
    def test_publish_stamps_created_at_from_clock(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg", clock=lambda: 1234.5)
        version = registry.publish(trained, tag="clocked")
        assert version.created_at == 1234.5
        manifest = json.loads((version.path / "manifest.json").read_text())
        assert manifest["created_at"] == 1234.5

    def test_default_clock_is_wall_time(self, trained, tmp_path):
        import time

        registry = ModelRegistry(tmp_path / "reg")
        before = time.time()
        version = registry.publish(trained)
        assert before <= version.created_at <= time.time()
