"""Tests for the annotation escalation queue and the closed online loop."""

import copy

import numpy as np
import pytest

from repro.active.stream import ThresholdController
from repro.core.framework import Diagnosis
from repro.mlcore import f1_score
from repro.serving.escalation import EscalationQueue, apply_annotations
from repro.serving.registry import ModelRegistry
from repro.serving.service import DiagnosisService


def _diag(confidence):
    return Diagnosis(label="healthy", confidence=confidence)


class TestQueue:
    def test_low_confidence_escalates(self):
        queue = EscalationQueue(ThresholdController(threshold=0.3, target_rate=None))
        assert queue.offer("run-a", _diag(confidence=0.4)) is True  # U = 0.6
        assert queue.offer("run-b", _diag(confidence=0.95)) is False  # U = 0.05
        assert len(queue) == 1
        item = queue.drain()[0]
        assert item.run == "run-a"
        assert item.uncertainty == pytest.approx(0.6)
        assert item.threshold == pytest.approx(0.3)

    def test_drain_is_fifo_and_bounded(self):
        queue = EscalationQueue(ThresholdController(threshold=0.0, target_rate=None))
        for i in range(5):
            queue.offer(f"run-{i}", _diag(confidence=0.2))
        first_two = queue.drain(2)
        assert [item.run for item in first_two] == ["run-0", "run-1"]
        assert len(queue) == 3

    def test_overflow_drops_oldest(self):
        queue = EscalationQueue(
            ThresholdController(threshold=0.0, target_rate=None), maxlen=2
        )
        for i in range(4):
            queue.offer(f"run-{i}", _diag(confidence=0.2))
        assert queue.n_dropped == 2
        assert [item.run for item in queue.drain()] == ["run-2", "run-3"]

    def test_adaptive_threshold_tightens_under_load(self):
        queue = EscalationQueue(
            ThresholdController(threshold=0.1, target_rate=0.1, adapt_step=0.1)
        )
        t0 = queue.controller.threshold
        queue.offer("run", _diag(confidence=0.2))  # escalated
        assert queue.controller.threshold > t0

    def test_escalation_rate_tracks_controller(self):
        queue = EscalationQueue(ThresholdController(threshold=0.5, target_rate=None))
        queue.offer("a", _diag(confidence=0.1))
        queue.offer("b", _diag(confidence=0.9))
        assert queue.escalation_rate == pytest.approx(0.5)

    def test_bad_maxlen_rejected(self):
        with pytest.raises(ValueError, match="maxlen"):
            EscalationQueue(maxlen=0)


class TestClosedLoop:
    """Low confidence -> escalation -> annotation -> better published model."""

    def test_annotated_escalations_produce_no_worse_version(
        self, tiny_config, corpus, tmp_path
    ):
        from repro.core.config import FrameworkConfig
        from repro.core.framework import ALBADross

        # deliberately weak v1: one labeled example per (app, label) cell
        seen, tiny_seed = set(), []
        for run in corpus["train"]:
            key = (run.app, run.label)
            if key not in seen:
                seen.add(key)
                tiny_seed.append(run)
        # enough trees that ensemble variance doesn't swamp the closed-loop
        # signal: a 5-tree forest on a 30-run holdout swings ~0.3 macro-F1
        # between seeds, drowning the "more annotations help" effect
        weak = ALBADross(
            tiny_config.catalog,
            FrameworkConfig(n_features=30, model_params={"n_estimators": 30}),
        )
        weak.fit_features(corpus["all"])
        weak.fit_initial(tiny_seed, [r.label for r in tiny_seed])

        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(weak, tag="weak")
        truth = {id(run): run.label for run in corpus["pool"]}

        escalation = EscalationQueue(
            ThresholdController(threshold=0.25, target_rate=None)
        )
        with DiagnosisService(
            registry, max_linger_s=0.01, escalation=escalation
        ) as service:
            service.diagnose_many(corpus["pool"])
            assert len(escalation) > 0
            assert service.stats.snapshot()["escalations"] == len(escalation)
            new_version = service.retrain_and_publish(
                annotator=lambda item: truth[id(item.run)], tag="annotated"
            )
            assert new_version is not None
            assert new_version.version_id == "v0002"
            assert service.version.version_id == "v0002"

        holdout = corpus["holdout"]
        y_true = np.array([r.label for r in holdout])
        old_fw, _ = registry.load("v0001")
        new_fw, _ = registry.load("v0002")
        old_f1 = f1_score(y_true, np.array([d.label for d in old_fw.diagnose(holdout)]))
        new_f1 = f1_score(y_true, np.array([d.label for d in new_fw.diagnose(holdout)]))
        assert new_f1 >= old_f1

    def test_apply_annotations_without_registry(self, trained, corpus):
        fw = copy.deepcopy(trained)
        queue = EscalationQueue(ThresholdController(threshold=0.0, target_rate=None))
        pool = corpus["pool"][:3]
        for run, diagnosis in zip(pool, fw.diagnose(pool)):
            queue.offer(run, diagnosis)
        n_before = len(fw._y_seed)
        refit, version = apply_annotations(
            fw, queue.drain(), annotator=lambda item: item.run.label
        )
        assert version is None
        assert len(refit._y_seed) == n_before + 3

    def test_annotator_may_skip_items(self, trained, corpus):
        fw = copy.deepcopy(trained)
        queue = EscalationQueue(ThresholdController(threshold=0.0, target_rate=None))
        pool = corpus["pool"][:2]
        for run, diagnosis in zip(pool, fw.diagnose(pool)):
            queue.offer(run, diagnosis)
        refit, version = apply_annotations(
            fw, queue.drain(), annotator=lambda item: None
        )
        assert version is None
        assert refit is fw

    def test_retrain_without_queue_rejected(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        with DiagnosisService(registry) as service:
            with pytest.raises(RuntimeError, match="escalation"):
                service.retrain_and_publish(annotator=lambda item: "healthy")

    def test_retrain_with_empty_queue_is_noop(self, trained, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(trained)
        service = DiagnosisService(
            registry, escalation=EscalationQueue()
        ).start()
        try:
            assert service.retrain_and_publish(annotator=lambda i: "healthy") is None
            assert service.version.version_id == "v0001"
        finally:
            service.stop()


class TestWarmRetrain:
    """retrain_and_publish with the incremental (warm) refit path."""

    def _warm_framework(self, tiny_config, corpus):
        from repro.core.config import FrameworkConfig
        from repro.core.framework import ALBADross

        fw = ALBADross(
            tiny_config.catalog,
            FrameworkConfig(
                n_features=30,
                model_params={"n_estimators": 6},
                splitter="hist",
                warm_start=True,
            ),
        )
        fw.fit_features(corpus["all"])
        fw.fit_initial(corpus["train"], [r.label for r in corpus["train"]])
        return fw

    def test_warm_retrain_counts_in_stats(self, tiny_config, corpus, tmp_path):
        fw = self._warm_framework(tiny_config, corpus)
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(fw)
        escalation = EscalationQueue(
            ThresholdController(threshold=0.0, target_rate=None)
        )
        with DiagnosisService(
            registry, max_linger_s=0.01, escalation=escalation
        ) as service:
            service.diagnose_many(corpus["pool"][:6])
            assert len(escalation) > 0
            version = service.retrain_and_publish(
                annotator=lambda item: item.run.label, warm=True
            )
            assert version is not None
            snap = service.stats.snapshot()
            assert snap["warm_refits"] == 1
            assert snap["model_swaps"] == 1

    def test_cold_retrain_does_not_count(self, tiny_config, corpus, tmp_path):
        fw = self._warm_framework(tiny_config, corpus)
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(fw)
        escalation = EscalationQueue(
            ThresholdController(threshold=0.0, target_rate=None)
        )
        with DiagnosisService(
            registry, max_linger_s=0.01, escalation=escalation
        ) as service:
            service.diagnose_many(corpus["pool"][:4])
            version = service.retrain_and_publish(
                annotator=lambda item: item.run.label, warm=False
            )
            assert version is not None
            assert service.stats.snapshot()["warm_refits"] == 0

    def test_absorb_warm_grows_model_in_place(self, tiny_config, corpus):
        fw = self._warm_framework(tiny_config, corpus)
        model_before = fw.model
        n_before = len(fw._y_seed)
        pool = corpus["pool"][:3]
        fw.absorb(pool, [r.label for r in pool])  # config says warm
        assert fw.last_absorb_warm is True
        assert fw.model is model_before  # refit in place, not rebuilt
        assert len(fw._y_seed) == n_before + 3

    def test_absorb_falls_back_cold_for_exact_models(self, trained, corpus):
        fw = copy.deepcopy(trained)  # exact splitter: no binned dataset
        pool = corpus["pool"][:2]
        fw.absorb(pool, [r.label for r in pool], warm=True)
        assert fw.last_absorb_warm is False

    def test_warm_snapshot_merges_across_shards(self):
        from repro.serving.stats import ServiceStats

        a, b = ServiceStats(), ServiceStats()
        a.record_warm_refit()
        a.record_warm_refit()
        b.record_warm_refit()
        merged = ServiceStats.merge([a.snapshot(), b.snapshot()])
        assert merged["warm_refits"] == 3
