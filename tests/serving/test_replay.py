"""Replay harness: schedule determinism and the exhaustive-census invariant."""

from __future__ import annotations

import pytest

from repro.core.persistence import run_fingerprint
from repro.serving.fleet import FleetService
from repro.serving.registry import ModelRegistry
from repro.serving.replay import (
    ECLIPSE_NODES,
    ReplayStream,
    fault_wrapper_factory,
    replay,
)
from repro.serving.service import DiagnosisService
from repro.testing.faults import FaultPlan


@pytest.fixture(scope="module")
def registry(tmp_path_factory, trained):
    reg = ModelRegistry(tmp_path_factory.mktemp("replay-registry"))
    reg.publish(trained, tag="replay-base")
    return reg


class TestReplayStream:
    def test_schedule_is_deterministic(self, corpus):
        templates = corpus["holdout"][:4]
        a = ReplayStream(templates, n_nodes=50, ticks=3, seed=7)
        b = ReplayStream(templates, n_nodes=50, ticks=3, seed=7)
        ev_a, ev_b = list(a.events()), list(b.events())
        assert len(ev_a) == len(a) == 150
        assert [(e.tick, e.node_id) for e in ev_a] == [
            (e.tick, e.node_id) for e in ev_b
        ]
        # runs are byte-identical, not merely equal-shaped
        assert [run_fingerprint(e.run) for e in ev_a] == [
            run_fingerprint(e.run) for e in ev_b
        ]

    def test_different_seed_different_schedule(self, corpus):
        templates = corpus["holdout"][:4]
        a = ReplayStream(templates, n_nodes=50, ticks=2, seed=0)
        b = ReplayStream(templates, n_nodes=50, ticks=2, seed=1)
        assert [(e.tick, e.node_id) for e in a.events()] != [
            (e.tick, e.node_id) for e in b.events()
        ]

    def test_events_carry_patched_node_ids(self, corpus):
        stream = ReplayStream(corpus["holdout"][:2], n_nodes=10, ticks=1)
        for event in stream.events():
            assert event.run.node_id == event.node_id
            assert 0 <= event.node_id < 10

    def test_emit_per_tick_subsamples_without_repeats(self, corpus):
        stream = ReplayStream(
            corpus["holdout"][:2], n_nodes=30, ticks=2, emit_per_tick=5
        )
        events = list(stream.events())
        assert len(events) == len(stream) == 10
        for tick in (0, 1):
            nodes = [e.node_id for e in events if e.tick == tick]
            assert len(nodes) == len(set(nodes)) == 5

    def test_defaults_to_eclipse_scale(self, corpus):
        stream = ReplayStream(corpus["holdout"][:1], ticks=1)
        assert stream.n_nodes == ECLIPSE_NODES
        assert len(stream) == ECLIPSE_NODES

    def test_validation(self, corpus):
        with pytest.raises(ValueError):
            ReplayStream([])
        with pytest.raises(ValueError):
            ReplayStream(corpus["holdout"][:1], n_nodes=0)
        with pytest.raises(ValueError):
            ReplayStream(corpus["holdout"][:1], ticks=0)
        with pytest.raises(ValueError):
            ReplayStream(corpus["holdout"][:1], n_nodes=5, emit_per_tick=6)


class TestReplayDrive:
    def test_census_is_exhaustive_on_clean_service(self, registry, corpus):
        stream = ReplayStream(
            corpus["holdout"][:3], n_nodes=40, ticks=2, seed=3
        )
        ticks_seen = []
        with DiagnosisService(registry, cache_size=0) as service:
            report = replay(
                service,
                stream,
                on_tick=ticks_seen.append,
                keep_diagnoses=True,
            )
        assert report.n_events == len(stream)
        assert report.n_ok + report.n_failed == report.n_events
        assert report.n_failed == 0 and not report.failures
        assert len(report.diagnoses) == report.n_ok
        assert ticks_seen == [0, 1]
        assert report.sustained_rps > 0
        assert report.p99_ms >= report.p50_ms > 0
        json_doc = report.as_json()
        assert "diagnoses" not in json_doc
        assert json_doc["n_ok"] == report.n_ok

    def test_replay_is_identical_across_fleet_and_serial(self, registry, corpus):
        """The bench's parity precondition: both arms see the same stream
        and produce the same diagnoses."""
        templates = corpus["holdout"][:3]
        make = lambda: ReplayStream(templates, n_nodes=60, ticks=2, seed=5)
        with DiagnosisService(registry, cache_size=0) as serial:
            ref = replay(serial, make(), keep_diagnoses=True)
        with FleetService(registry, n_shards=4, cache_size=0) as fleet:
            got = replay(fleet, make(), keep_diagnoses=True)
        assert ref.n_failed == got.n_failed == 0
        assert [d.label for d in got.diagnoses] == [
            d.label for d in ref.diagnoses
        ]
        assert [d.confidence for d in got.diagnoses] == [
            d.confidence for d in ref.diagnoses
        ]

    def test_faulted_shard_census_and_probe_reroute(self, registry, corpus):
        """A shard crashing mid-replay shows up as typed failures and/or
        reroutes — never as silently missing events."""
        plans = {0: FaultPlan.script(["ok", "ok", "raise:200"])}
        factory = fault_wrapper_factory(plans)
        fleet = FleetService(
            registry,
            n_shards=2,
            cache_size=0,
            predict_wrapper_factory=factory,
        )
        stream = ReplayStream(
            corpus["holdout"][:3], n_nodes=80, ticks=3, seed=9
        )
        with fleet:
            report = replay(fleet, stream, probe_between_ticks=True)
        assert 0 in factory.injectors  # the plan was actually installed
        assert report.n_ok + report.n_failed == report.n_events
        assert report.n_ok > 0  # the clean shard kept serving
