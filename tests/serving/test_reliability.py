"""Chaos suite for the serving reliability layer.

Every scenario drives the deterministic fault harness
(:mod:`repro.testing.faults`) against the engine/service and asserts the
core invariant: a ``predict_fn`` that truncates, raises, or stalls never
leaves a submitted future unresolved — every future completes with a
result, a typed error, or a flagged degraded fallback. All waits are
bounded (``result(timeout=...)`` plus pytest-timeout in CI), so a
reintroduced future-hang fails in seconds.
"""

import threading
import time

import pytest

from repro.core.framework import Diagnosis
from repro.serving import (
    FALLBACK_LABEL,
    CircuitBreaker,
    DeadlineExceeded,
    DiagnosisService,
    DispatcherRestarted,
    DispatcherWatchdog,
    EngineClosedError,
    EscalationQueue,
    MicroBatcher,
    ModelRegistry,
    RetryPolicy,
    is_fallback,
)
from repro.testing.faults import FaultInjector, FaultPlan, InjectedFault

pytestmark = pytest.mark.timeout(60)


def ok_predict(runs):
    return [Diagnosis(label="healthy", confidence=0.9) for _ in runs]


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        a = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.2, seed=7)
        b = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.2, seed=7)
        delays_a = [a.delay(i) for i in range(6)]
        delays_b = [b.delay(i) for i in range(6)]
        assert delays_a == delays_b  # same seed, same schedule
        assert delays_a[1] > delays_a[0]  # exponential growth
        assert max(delays_a) <= 0.5 * 1.2  # capped (plus jitter headroom)
        other = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.2, seed=8)
        assert [other.delay(i) for i in range(6)] != delays_a

    def test_serving_errors_are_not_retryable_by_default(self):
        policy = RetryPolicy()
        assert policy.retryable(ValueError("transient"))
        assert not policy.retryable(DeadlineExceeded("expired"))
        assert not policy.retryable(KeyboardInterrupt())

    @pytest.mark.parametrize(
        "kwargs", [{"max_retries": -1}, {"base_delay_s": -0.1}, {"jitter": 2.0}]
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCircuitBreaker:
    def test_state_machine_with_fake_clock(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_timeout_s=10.0, time_fn=lambda: clock[0]
        )
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # open: deny until the timeout
        clock[0] = 10.5
        assert breaker.allow()  # first caller becomes the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_failure()  # probe failed: reopen
        assert breaker.state == "open"
        clock[0] = 21.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="recovery_timeout_s"):
            CircuitBreaker(recovery_timeout_s=-1.0)


class TestFaultHarness:
    def test_script_plan_replays_and_expands_repeats(self):
        plan = FaultPlan.script(["raise:2", "stall:0.01", "truncate"])
        actions = [plan.next_action() for _ in range(6)]
        assert actions == ["raise", "raise", "stall:0.01", "truncate", "ok", "ok"]

    def test_random_plan_is_seeded(self):
        plan_a = FaultPlan.random(3, p_fault=0.5)
        plan_b = FaultPlan.random(3, p_fault=0.5)
        seq_a = [plan_a.next_action() for _ in range(20)]
        seq_b = [plan_b.next_action() for _ in range(20)]
        assert seq_a == seq_b
        assert "raise" in seq_a and "ok" in seq_a

    def test_injector_logs_and_truncates(self):
        inj = FaultInjector(FaultPlan.script(["truncate:1"]))
        wrapped = inj.wrap(ok_predict)
        assert len(wrapped([1, 2, 3])) == 2
        assert len(wrapped([1, 2, 3])) == 3
        assert inj.log[0] == "truncate"

    def test_injector_nan_flags_diagnoses(self):
        inj = FaultInjector(FaultPlan.script(["nan"]))
        out = inj.wrap(ok_predict)([1, 2])
        assert all(d.confidence != d.confidence for d in out)  # NaN


# ----------------------------------------------------------------------
class TestDeadlines:
    def test_stalled_batch_expires_queued_requests(self):
        """stall → deadline: requests stuck behind a wedged batch fail fast."""
        inj = FaultInjector(FaultPlan.script(["hang"]))
        engine = MicroBatcher(
            inj.wrap(ok_predict), max_batch=1, max_linger_s=0.0
        )
        try:
            stuck = engine.submit(object())  # enters the hung predict
            assert inj.stalled.wait(5.0)
            doomed = engine.submit(object(), deadline_s=0.05)
            time.sleep(0.1)  # expires while the dispatcher is wedged
            inj.release.set()
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=5.0)
            assert stuck.result(timeout=5.0).label == "healthy"
            snap = engine.stats.snapshot()
            assert snap["deadline_drops"] == 1
        finally:
            inj.release.set()
            engine.close()

    def test_default_deadline_applies_to_every_submit(self):
        inj = FaultInjector(FaultPlan.script(["hang"]))
        engine = MicroBatcher(
            inj.wrap(ok_predict),
            max_batch=1,
            max_linger_s=0.0,
            default_deadline_s=0.05,
        )
        try:
            engine.submit(object())
            assert inj.stalled.wait(5.0)
            doomed = [engine.submit(object()) for _ in range(3)]
            time.sleep(0.1)
            inj.release.set()
            for future in doomed:
                with pytest.raises(DeadlineExceeded):
                    future.result(timeout=5.0)
            assert engine.stats.snapshot()["deadline_drops"] == 3
        finally:
            inj.release.set()
            engine.close()


class TestRetries:
    def test_flaky_predict_retries_then_succeeds(self):
        """flaky → retry: transient faults are absorbed, not surfaced."""
        inj = FaultInjector(FaultPlan.script(["raise:2"]))
        engine = MicroBatcher(
            inj.wrap(ok_predict),
            max_batch=4,
            max_linger_s=0.0,
            retry=RetryPolicy(max_retries=3, base_delay_s=0.001, jitter=0.0),
        )
        with engine:
            assert engine.submit(object()).result(timeout=5.0).label == "healthy"
        snap = engine.stats.snapshot()
        assert snap["retries"] == 2
        assert inj.log == ["raise", "raise", "ok"]

    def test_exhausted_retries_fail_the_batch_with_the_last_error(self):
        inj = FaultInjector(FaultPlan.script(["raise:5"]))
        engine = MicroBatcher(
            inj.wrap(ok_predict),
            max_batch=4,
            max_linger_s=0.01,
            retry=RetryPolicy(max_retries=1, base_delay_s=0.001),
        )
        with engine:
            futures = [engine.submit(object()) for _ in range(2)]
            for future in futures:
                with pytest.raises(InjectedFault):
                    future.result(timeout=5.0)
        assert engine.stats.snapshot()["retries"] >= 1

    def test_no_policy_means_no_retry(self):
        inj = FaultInjector(FaultPlan.script(["raise"]))
        with MicroBatcher(inj.wrap(ok_predict), max_linger_s=0.0) as engine:
            with pytest.raises(InjectedFault):
                engine.submit(object()).result(timeout=5.0)
        assert engine.stats.snapshot()["retries"] == 0


class TestWatchdog:
    def test_stuck_batch_restarts_dispatcher_and_fails_inflight(self):
        """crash loop → watchdog: a wedged predict cannot wedge the engine."""
        inj = FaultInjector(FaultPlan.script(["hang"]))
        engine = MicroBatcher(inj.wrap(ok_predict), max_batch=4, max_linger_s=0.0)
        watchdog = DispatcherWatchdog(
            engine, stall_timeout_s=0.1, poll_interval_s=0.02
        ).start()
        try:
            stuck = engine.submit(object())
            assert inj.stalled.wait(5.0)
            with pytest.raises(DispatcherRestarted):
                stuck.result(timeout=5.0)
            inj.release.set()  # let the zombie thread unwind
            # the restarted generation keeps serving
            assert engine.submit(object()).result(timeout=5.0).label == "healthy"
            snap = engine.stats.snapshot()
            assert snap["watchdog_restarts"] >= 1
            assert engine.restarts >= 1
        finally:
            inj.release.set()
            watchdog.stop()
            engine.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_dispatcher_is_detected_and_restarted(self):
        engine = MicroBatcher(ok_predict, max_batch=4, max_linger_s=0.0)
        watchdog = DispatcherWatchdog(engine, stall_timeout_s=5.0)
        try:
            def crash(batch):
                raise RuntimeError("escaped bug")

            engine._run_batch = crash  # instance override: loop-level crash
            doomed = engine.submit(object())
            with pytest.raises(DispatcherRestarted):
                doomed.result(timeout=5.0)
            assert wait_until(lambda: not engine.dispatcher_alive)
            del engine._run_batch  # "deploy the fix", then recover
            assert watchdog.check() is True
            assert engine.dispatcher_alive
            assert engine.submit(object()).result(timeout=5.0).label == "healthy"
            assert watchdog.check() is False  # healthy engine: no-op
        finally:
            watchdog.stop()
            engine.close()

    def test_watchdog_ignores_closed_engines(self):
        engine = MicroBatcher(ok_predict)
        engine.close()
        assert DispatcherWatchdog(engine).check() is False

    def test_retry_backoff_does_not_trip_the_stall_watchdog(self):
        """Backoff sleeps refresh the stall clock: a legitimately retrying
        batch must not be failed as stuck just because its cumulative
        backoff exceeds the stall timeout."""
        inj = FaultInjector(FaultPlan.script(["raise"]))
        engine = MicroBatcher(
            inj.wrap(ok_predict),
            max_batch=1,
            max_linger_s=0.0,
            retry=RetryPolicy(max_retries=2, base_delay_s=0.5, jitter=0.0),
        )
        watchdog = DispatcherWatchdog(engine, stall_timeout_s=0.2)
        try:
            future = engine.submit(object())
            # poll through most of the 0.5s backoff window — far longer
            # than the stall timeout — and the watchdog must stay quiet
            deadline = time.monotonic() + 0.4
            while time.monotonic() < deadline:
                assert watchdog.check() is False
                time.sleep(0.02)
            assert future.result(timeout=5.0).label == "healthy"
            assert engine.restarts == 0
            assert engine.stats.snapshot()["watchdog_restarts"] == 0
        finally:
            engine.close()


class TestRestartRaces:
    def test_restart_while_coalescing_resolves_dequeued_requests(self):
        """A restart committing between queue.get and in-flight
        registration must not strand the dequeued requests: they are in
        neither the queue nor the in-flight table, so nothing else can
        ever reach them."""
        engine = MicroBatcher(ok_predict, max_batch=1, max_linger_s=0.0)
        orig_drop = engine._drop_expired
        fired = threading.Event()

        def restart_then_drop(batch):
            # simulate the race: the restart lands after the dispatcher
            # dequeued the batch but before it registered it in flight
            if not fired.is_set():
                fired.set()
                engine.restart_dispatcher("test: restart while coalescing")
            return orig_drop(batch)

        engine._drop_expired = restart_then_drop
        try:
            future = engine.submit(object())
            with pytest.raises(DispatcherRestarted):
                future.result(timeout=5.0)
            engine.flush(timeout=5.0)  # the pending ledger fully drains
            assert engine.pending == 0
            # the restarted generation keeps serving
            assert engine.submit(object()).result(timeout=5.0).label == "healthy"
        finally:
            engine.close()

    def test_superseded_dispatcher_stops_retrying(self):
        """After a restart fails the batch, the zombie thread must stop
        its retry loop instead of scoring concurrently with the new
        dispatcher against already-resolved futures."""
        inj = FaultInjector(FaultPlan.script(["raise:100"]))
        engine = MicroBatcher(
            inj.wrap(ok_predict),
            max_batch=1,
            max_linger_s=0.0,
            retry=RetryPolicy(max_retries=50, base_delay_s=0.2, jitter=0.0),
        )
        try:
            future = engine.submit(object())
            assert wait_until(lambda: len(inj.log) >= 1)  # inside backoff now
            engine.restart_dispatcher("test: supersede mid-retry")
            with pytest.raises(DispatcherRestarted):
                future.result(timeout=5.0)
            calls_at_restart = len(inj.log)
            time.sleep(0.7)  # several would-be backoff periods
            # at most one attempt already in flight when the restart landed
            assert len(inj.log) <= calls_at_restart + 1
        finally:
            engine.close()

    def test_concurrent_restarts_leave_exactly_one_dispatcher(self):
        def alive_dispatchers():
            return sum(
                1
                for t in threading.enumerate()
                if t.name.startswith("repro-microbatcher") and t.is_alive()
            )

        engine = MicroBatcher(ok_predict, max_batch=4, max_linger_s=0.0)
        try:
            assert wait_until(lambda: engine.dispatcher_alive)
            baseline = alive_dispatchers()
            n = 4
            barrier = threading.Barrier(n)

            def restart():
                barrier.wait(timeout=30.0)
                engine.restart_dispatcher("test: concurrent restart")

            threads = [threading.Thread(target=restart) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5.0)
            # superseded spawns exit on their first generation check;
            # without generation-scoped spawning every racer's thread
            # reads the final generation and all stay current forever
            assert wait_until(lambda: alive_dispatchers() <= baseline)
            assert engine.dispatcher_alive
            assert engine.restarts == n
            assert engine.submit(object()).result(timeout=5.0).label == "healthy"
        finally:
            engine.close()


class TestCloseSemantics:
    def test_close_fails_pending_futures_past_the_drain_deadline(self):
        inj = FaultInjector(FaultPlan.script(["hang"]))
        engine = MicroBatcher(inj.wrap(ok_predict), max_batch=1, max_linger_s=0.0)
        stuck = engine.submit(object())
        assert inj.stalled.wait(5.0)
        queued = [engine.submit(object()) for _ in range(3)]
        engine.close(timeout=0.2)  # drain deadline expires
        for future in queued + [stuck]:
            with pytest.raises(EngineClosedError):
                future.result(timeout=5.0)
        inj.release.set()
        with pytest.raises(EngineClosedError):
            engine.submit(object())


# ----------------------------------------------------------------------
class TestNaNConfidence:
    def test_nan_confidence_serves_but_never_escalates(self):
        inj = FaultInjector(FaultPlan.script(["nan"]))
        queue = EscalationQueue()
        with MicroBatcher(inj.wrap(ok_predict), max_linger_s=0.0) as engine:
            diagnosis = engine.submit(object()).result(timeout=5.0)
        assert diagnosis.confidence != diagnosis.confidence  # NaN survives
        # NaN uncertainty never clears the threshold, and never crashes
        assert queue.offer(object(), diagnosis) is False
        assert len(queue) == 0


class TestForcedEscalation:
    def test_offer_forced_bypasses_the_adaptive_controller(self):
        queue = EscalationQueue(maxlen=8)
        degraded = Diagnosis(label=FALLBACK_LABEL, confidence=0.0)
        threshold_before = queue.controller.threshold
        for _ in range(5):
            assert queue.offer_forced(object(), degraded) is True
        # forced offers neither consult nor tune the controller
        assert queue.controller.threshold == threshold_before
        assert queue.controller.n_seen == 0
        assert len(queue) == 5

    def test_offer_forced_refuses_at_capacity_instead_of_evicting(self):
        queue = EscalationQueue(maxlen=2)
        genuine = Diagnosis(label="unknown", confidence=0.0)
        seeded = [object(), object()]
        for run in seeded:
            assert queue.offer(run, genuine) is True
        degraded = Diagnosis(label=FALLBACK_LABEL, confidence=0.0)
        assert queue.offer_forced(object(), degraded) is False
        assert queue.n_refused == 1
        assert queue.n_dropped == 0
        # the genuine low-confidence items survived the storm
        assert [item.run for item in queue.drain()] == seeded


class TestEscalationThreadSafety:
    def test_concurrent_offer_and_drain_lose_nothing(self):
        queue = EscalationQueue(maxlen=10_000)
        uncertain = Diagnosis(label="unknown", confidence=0.0)
        n_threads, per_thread = 4, 200
        offered = []

        def offerer():
            count = 0
            for _ in range(per_thread):
                if queue.offer(object(), uncertain):
                    count += 1
            offered.append(count)

        drained: list = []

        def drainer():
            for _ in range(50):
                drained.extend(queue.drain(16))
                time.sleep(0.001)

        threads = [threading.Thread(target=offerer) for _ in range(n_threads)]
        threads.append(threading.Thread(target=drainer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        drained.extend(queue.drain())
        assert sum(offered) == len(drained) + queue.n_dropped
        assert queue.n_dropped == 0  # maxlen was never hit


# ----------------------------------------------------------------------
@pytest.fixture()
def registry(trained, tmp_path):
    registry = ModelRegistry(tmp_path / "reg")
    registry.publish(trained, tag="seed")
    return registry


class _DownFramework:
    """A framework stub whose scoring path is hard down."""

    def featurize(self, runs):
        raise InjectedFault("feature store unreachable")

    def predict_features(self, X):  # pragma: no cover - never reached
        raise InjectedFault("unreachable")


class TestServiceDegradedMode:
    def test_breaker_serves_flagged_fallbacks_then_recovers(
        self, registry, corpus
    ):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_timeout_s=10.0, time_fn=lambda: clock[0]
        )
        pool = corpus["pool"]
        service = DiagnosisService(
            registry,
            max_linger_s=0.0,
            cache_size=0,
            breaker=breaker,
            escalation=EscalationQueue(),
        ).start()
        try:
            healthy_framework = service._framework
            service._framework = _DownFramework()
            # below the threshold, callers still see the real error
            with pytest.raises(InjectedFault):
                service.diagnose(pool[0])
            # threshold crossed: flagged fallback instead of an error
            degraded = service.diagnose(pool[1])
            assert is_fallback(degraded)
            assert degraded.label == FALLBACK_LABEL
            assert degraded.confidence == 0.0
            # breaker open: predict path skipped entirely
            assert is_fallback(service.diagnose(pool[2]))
            assert breaker.state == "open"
            assert service.ready() is False
            assert service.health()["breaker_state"] == "open"
            # degraded traffic still reaches the annotation loop
            assert len(service.escalation) >= 2
            snap = service.stats.snapshot()
            assert snap["degraded_responses"] == 2
            # the model path comes back; the probe closes the breaker
            service._framework = healthy_framework
            clock[0] = 11.0
            recovered = service.diagnose(pool[3])
            assert not is_fallback(recovered)
            assert breaker.state == "closed"
            assert service.ready() is True
        finally:
            service.stop()

    def test_degraded_storm_does_not_skew_escalation_controller(
        self, registry, corpus
    ):
        """A breaker-open storm must not tune the active-learning
        threshold toward the outage or evict genuine escalations."""
        breaker = CircuitBreaker(failure_threshold=1, recovery_timeout_s=1e9)
        escalation = EscalationQueue(maxlen=4)
        pool = corpus["pool"]
        service = DiagnosisService(
            registry,
            max_linger_s=0.0,
            cache_size=0,
            breaker=breaker,
            escalation=escalation,
        ).start()
        try:
            genuine = Diagnosis(label="unknown", confidence=0.0)
            seeded = [object(), object()]
            for run in seeded:
                assert escalation.offer(run, genuine)
            threshold_before = escalation.controller.threshold
            n_seen_before = escalation.controller.n_seen
            service._framework = _DownFramework()
            for run in pool[:5]:  # threshold=1: every call degrades
                assert is_fallback(service.diagnose(run))
            assert escalation.controller.threshold == threshold_before
            assert escalation.controller.n_seen == n_seen_before
            # maxlen 4: two degraded fit, three refused, none evicted
            assert escalation.n_dropped == 0
            assert escalation.n_refused == 3
            drained_runs = [item.run for item in escalation.drain()]
            for run in seeded:
                assert run in drained_runs
            assert service.stats.snapshot()["degraded_responses"] == 5
        finally:
            service.stop()

    def test_service_health_probe_shape(self, registry, corpus):
        with DiagnosisService(
            registry, max_linger_s=0.0, watchdog_stall_s=5.0
        ) as service:
            service.diagnose(corpus["pool"][0])
            health = service.health()
        assert health["started"] is True
        assert health["ready"] is True
        assert health["dispatcher_alive"] is True
        assert health["breaker_state"] == "disabled"
        assert health["version"] == "v0001"
        assert health["pending"] == 0

    def test_unstarted_service_is_not_ready(self, registry):
        service = DiagnosisService(registry)
        assert service.ready() is False
        assert service.health()["started"] is False

    def test_service_retry_absorbs_transient_registry_scoring_faults(
        self, registry, corpus
    ):
        inj = FaultInjector(FaultPlan.script(["raise"]))
        service = DiagnosisService(
            registry,
            max_linger_s=0.0,
            cache_size=0,
            retry=RetryPolicy(max_retries=2, base_delay_s=0.001),
        ).start()
        try:
            # fault the vectorized scorer the engine actually calls
            service._engine.predict_fn = inj.wrap(service._predict_batch)
            diagnosis = service.diagnose(corpus["pool"][0])
            assert not is_fallback(diagnosis)
            assert service.stats.snapshot()["retries"] == 1
        finally:
            service.stop()


class TestStatsSnapshotKeys:
    def test_reliability_counters_present_and_zeroed(self):
        from repro.serving import ServiceStats

        snap = ServiceStats().snapshot()
        for key in (
            "retries",
            "deadline_drops",
            "watchdog_restarts",
            "degraded_responses",
        ):
            assert snap[key] == 0


class TestSyncWaitDerivation:
    def test_explicit_timeout_wins(self):
        from repro.serving.reliability import sync_wait_s

        assert sync_wait_s(5.0, deadline_s=2.0) == 5.0

    def test_deadline_plus_grace(self):
        from repro.serving.reliability import (
            SYNC_WAIT_GRACE_S,
            sync_wait_s,
        )

        assert sync_wait_s(None, deadline_s=2.0) == 2.0 + SYNC_WAIT_GRACE_S

    def test_flat_default_when_unconfigured(self):
        from repro.serving.reliability import (
            SYNC_WAIT_DEFAULT_S,
            sync_wait_s,
        )

        assert sync_wait_s(None, deadline_s=None) == SYNC_WAIT_DEFAULT_S
