"""Shared serving fixtures: a small trained framework plus spare runs."""

from __future__ import annotations

import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import ALBADross
from repro.datasets.generate import generate_runs


@pytest.fixture(scope="package")
def corpus(tiny_config):
    """A deterministic miniature campaign, split train/pool/holdout."""
    runs = generate_runs(tiny_config, rng=11)
    assert len(runs) >= 24
    third = len(runs) // 3
    return {
        "all": runs,
        "train": runs[:third],
        "pool": runs[third : 2 * third],
        "holdout": runs[2 * third :],
    }


@pytest.fixture(scope="package")
def trained(tiny_config, corpus):
    """A trained framework (feature space fit on the full corpus)."""
    fw = ALBADross(
        tiny_config.catalog,
        FrameworkConfig(n_features=30, model_params={"n_estimators": 5}),
    )
    fw.fit_features(corpus["all"])
    fw.fit_initial(corpus["train"], [r.label for r in corpus["train"]])
    return fw
