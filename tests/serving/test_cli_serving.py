"""End-to-end CLI tests for the serving commands and the console entry."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import save_framework
from repro.datasets.runs_io import save_runs

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture()
def artifacts(trained, corpus, tmp_path):
    """A saved model pickle and a pool archive on disk."""
    model = save_framework(trained, tmp_path / "model.pkl")
    archive = save_runs(corpus["pool"], tmp_path / "pool.npz")
    return {"model": model, "archive": archive, "root": tmp_path / "registry"}


class TestRegistryCommand:
    def test_publish_list_rollback(self, artifacts, capsys):
        root = str(artifacts["root"])
        assert main(["registry", "list", "--root", root]) == 0
        assert "empty" in capsys.readouterr().out

        assert main([
            "registry", "publish", "--root", root,
            "--model", str(artifacts["model"]), "--tag", "seed",
        ]) == 0
        assert "published v0001" in capsys.readouterr().out

        assert main([
            "registry", "publish", "--root", root,
            "--model", str(artifacts["model"]),
        ]) == 0
        capsys.readouterr()

        assert main(["registry", "list", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "v0001" in out and "v0002" in out
        assert "* v0002" in out  # current marker
        assert "tag=seed" in out

        assert main(["registry", "rollback", "--root", root]) == 0
        assert "current -> v0001" in capsys.readouterr().out

        assert main([
            "registry", "activate", "--root", root, "--ref", "v0002",
        ]) == 0
        assert "current -> v0002" in capsys.readouterr().out

    def test_publish_requires_model(self, artifacts, capsys):
        assert main([
            "registry", "publish", "--root", str(artifacts["root"]),
        ]) == 2
        assert "--model" in capsys.readouterr().err

    def test_rollback_on_empty_registry_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "registry", "rollback", "--root", str(tmp_path / "none"),
        ]) == 2
        assert "registry error" in capsys.readouterr().err


class TestServeBatchCommand:
    def test_serve_batch_prints_stats(self, artifacts, capsys):
        root = str(artifacts["root"])
        assert main([
            "registry", "publish", "--root", root,
            "--model", str(artifacts["model"]),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve-batch", "--registry", root,
            "--runs", str(artifacts["archive"]),
            "--max-batch", "8", "--linger-ms", "20", "--escalate",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving v0001" in out
        assert "scored" in out
        assert "batch_size_histogram" in out
        assert "escalation queue depth" in out

    def test_serve_batch_on_empty_registry_fails_cleanly(
        self, artifacts, tmp_path, capsys
    ):
        assert main([
            "serve-batch", "--registry", str(tmp_path / "nothing"),
            "--runs", str(artifacts["archive"]),
        ]) == 2
        assert "registry error" in capsys.readouterr().err

    def test_serve_batch_health_and_reliability_knobs(self, artifacts, capsys):
        root = str(artifacts["root"])
        main(["registry", "publish", "--root", root,
              "--model", str(artifacts["model"])])
        capsys.readouterr()
        assert main([
            "serve-batch", "--registry", root,
            "--runs", str(artifacts["archive"]),
            "--retries", "2", "--degrade-after", "3",
            "--deadline-ms", "30000", "--stall-timeout-s", "30",
            "--health",
        ]) == 0
        out = capsys.readouterr().out
        assert "retries" in out
        assert "deadline_drops" in out
        assert "watchdog_restarts" in out
        assert "degraded_responses" in out
        assert "health:" in out
        assert "breaker_state" in out
        assert "dispatcher_alive" in out

    def test_serve_batch_respects_limit(self, artifacts, capsys):
        root = str(artifacts["root"])
        main(["registry", "publish", "--root", root,
              "--model", str(artifacts["model"])])
        capsys.readouterr()
        assert main([
            "serve-batch", "--registry", root,
            "--runs", str(artifacts["archive"]), "--limit", "3",
        ]) == 0
        assert "scored 3 runs" in capsys.readouterr().out


class TestConsoleEntry:
    def test_python_dash_m_repro_help(self):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0
        assert "serve-batch" in proc.stdout
        assert "registry" in proc.stdout

    def test_console_script_declared(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert 'repro = "repro.cli:main"' in pyproject
