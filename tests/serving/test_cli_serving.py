"""End-to-end CLI tests for the serving commands and the console entry."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import save_framework
from repro.datasets.runs_io import save_runs

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture()
def artifacts(trained, corpus, tmp_path):
    """A saved model pickle and a pool archive on disk."""
    model = save_framework(trained, tmp_path / "model.pkl")
    archive = save_runs(corpus["pool"], tmp_path / "pool.npz")
    return {"model": model, "archive": archive, "root": tmp_path / "registry"}


class TestRegistryCommand:
    def test_publish_list_rollback(self, artifacts, capsys):
        root = str(artifacts["root"])
        assert main(["registry", "list", "--root", root]) == 0
        assert "empty" in capsys.readouterr().out

        assert main([
            "registry", "publish", "--root", root,
            "--model", str(artifacts["model"]), "--tag", "seed",
        ]) == 0
        assert "published v0001" in capsys.readouterr().out

        assert main([
            "registry", "publish", "--root", root,
            "--model", str(artifacts["model"]),
        ]) == 0
        capsys.readouterr()

        assert main(["registry", "list", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "v0001" in out and "v0002" in out
        assert "* v0002" in out  # current marker
        assert "tag=seed" in out

        assert main(["registry", "rollback", "--root", root]) == 0
        assert "current -> v0001" in capsys.readouterr().out

        assert main([
            "registry", "activate", "--root", root, "--ref", "v0002",
        ]) == 0
        assert "current -> v0002" in capsys.readouterr().out

    def test_publish_requires_model(self, artifacts, capsys):
        assert main([
            "registry", "publish", "--root", str(artifacts["root"]),
        ]) == 2
        assert "--model" in capsys.readouterr().err

    def test_rollback_on_empty_registry_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "registry", "rollback", "--root", str(tmp_path / "none"),
        ]) == 2
        assert "registry error" in capsys.readouterr().err


class TestServeBatchCommand:
    def test_serve_batch_prints_stats(self, artifacts, capsys):
        root = str(artifacts["root"])
        assert main([
            "registry", "publish", "--root", root,
            "--model", str(artifacts["model"]),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve-batch", "--registry", root,
            "--runs", str(artifacts["archive"]),
            "--max-batch", "8", "--linger-ms", "20", "--escalate",
        ]) == 0
        out = capsys.readouterr().out
        assert "serving v0001" in out
        assert "scored" in out
        assert "batch_size_histogram" in out
        assert "escalation queue depth" in out

    def test_serve_batch_on_empty_registry_fails_cleanly(
        self, artifacts, tmp_path, capsys
    ):
        assert main([
            "serve-batch", "--registry", str(tmp_path / "nothing"),
            "--runs", str(artifacts["archive"]),
        ]) == 2
        assert "registry error" in capsys.readouterr().err

    def test_serve_batch_health_and_reliability_knobs(self, artifacts, capsys):
        root = str(artifacts["root"])
        main(["registry", "publish", "--root", root,
              "--model", str(artifacts["model"])])
        capsys.readouterr()
        assert main([
            "serve-batch", "--registry", root,
            "--runs", str(artifacts["archive"]),
            "--retries", "2", "--degrade-after", "3",
            "--deadline-ms", "30000", "--stall-timeout-s", "30",
            "--health",
        ]) == 0
        out = capsys.readouterr().out
        assert "retries" in out
        assert "deadline_drops" in out
        assert "watchdog_restarts" in out
        assert "degraded_responses" in out
        assert "health:" in out
        assert "breaker_state" in out
        assert "dispatcher_alive" in out

    def test_serve_batch_respects_limit(self, artifacts, capsys):
        root = str(artifacts["root"])
        main(["registry", "publish", "--root", root,
              "--model", str(artifacts["model"])])
        capsys.readouterr()
        assert main([
            "serve-batch", "--registry", root,
            "--runs", str(artifacts["archive"]), "--limit", "3",
        ]) == 0
        assert "scored 3 runs" in capsys.readouterr().out


class TestConsoleEntry:
    def test_python_dash_m_repro_help(self):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0
        assert "serve-batch" in proc.stdout
        assert "registry" in proc.stdout

    def test_console_script_declared(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        assert 'repro = "repro.cli:main"' in pyproject


class TestFleetServeCommand:
    def test_fleet_serve_prints_fleet_stats(self, artifacts, capsys):
        root = str(artifacts["root"])
        main(["registry", "publish", "--root", root,
              "--model", str(artifacts["model"])])
        capsys.readouterr()
        assert main([
            "fleet-serve", "--registry", root,
            "--runs", str(artifacts["archive"]),
            "--shards", "3", "--max-batch", "8", "--linger-ms", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet of 3 shards serving v0001" in out
        assert "scored" in out and "across 3 shards" in out
        assert "reroutes" in out
        assert "escalations_forced" in out
        assert "shard-0:" in out and "shard-2:" in out

    def test_fleet_serve_with_jobs_db_reports_queue(
        self, artifacts, tmp_path, capsys
    ):
        root = str(artifacts["root"])
        main(["registry", "publish", "--root", root,
              "--model", str(artifacts["model"])])
        capsys.readouterr()
        db = tmp_path / "jobs.db"
        assert main([
            "fleet-serve", "--registry", root,
            "--runs", str(artifacts["archive"]),
            "--shards", "2", "--jobs-db", str(db), "--health",
        ]) == 0
        out = capsys.readouterr().out
        assert db.exists()
        assert "job queue:" in out
        assert "fleet health:" in out

    def test_fleet_serve_on_empty_registry_fails_cleanly(
        self, artifacts, tmp_path, capsys
    ):
        assert main([
            "fleet-serve", "--registry", str(tmp_path / "nothing"),
            "--runs", str(artifacts["archive"]),
        ]) == 2
        assert "registry error" in capsys.readouterr().err

    def test_stats_json_written_by_both_serving_commands(
        self, artifacts, tmp_path, capsys
    ):
        import json

        root = str(artifacts["root"])
        main(["registry", "publish", "--root", root,
              "--model", str(artifacts["model"])])
        capsys.readouterr()
        batch_path = tmp_path / "serve.json"
        fleet_path = tmp_path / "fleet.json"
        assert main([
            "serve-batch", "--registry", root,
            "--runs", str(artifacts["archive"]),
            "--health", "--stats-json", str(batch_path),
        ]) == 0
        assert main([
            "fleet-serve", "--registry", root,
            "--runs", str(artifacts["archive"]),
            "--shards", "2", "--stats-json", str(fleet_path),
        ]) == 0
        capsys.readouterr()
        batch_doc = json.loads(batch_path.read_text())
        assert batch_doc["stats"]["requests"] > 0
        assert batch_doc["health"]["dispatcher_alive"] is True
        assert "captured_at" in batch_doc
        fleet_doc = json.loads(fleet_path.read_text())
        assert fleet_doc["stats"]["fleet"]["requests"] > 0
        assert fleet_doc.get("health") is None  # --health not passed


class TestQueueCommand:
    @pytest.fixture()
    def seeded_db(self, tmp_path):
        from repro.serving.jobs import JobQueue

        db = tmp_path / "jobs.db"
        queue = JobQueue(db)
        queue.enqueue("escalation", {"a": 1})
        queue.enqueue("retrain_publish", {"tag": None})
        (claimed,) = queue.claim(kinds=("escalation",), n=1, worker="w")
        queue.nack(claimed.job_id, claimed.claim_token, error="boom")
        queue.close()
        return db

    def test_list_shows_counts_and_rows(self, seeded_db, capsys):
        assert main(["queue", "list", "--db", str(seeded_db)]) == 0
        out = capsys.readouterr().out
        assert "PENDING=1" in out and "FAILED=1" in out
        assert "escalation" in out and "retrain_publish" in out
        assert "err=boom" in out

    def test_inspect_dumps_job_document(self, seeded_db, capsys):
        import json

        assert main([
            "queue", "inspect", "--db", str(seeded_db), "--job-id", "1",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["job_id"] == 1
        assert doc["state"] == "FAILED"
        assert doc["attempts"] == 1
        assert doc["payload_keys"] == ["a"]

    def test_requeue_resets_a_failed_job(self, seeded_db, capsys):
        assert main([
            "queue", "requeue", "--db", str(seeded_db), "--job-id", "1",
        ]) == 0
        assert "job 1 -> PENDING" in capsys.readouterr().out
        main(["queue", "list", "--db", str(seeded_db)])
        assert "PENDING=2" in capsys.readouterr().out

    def test_purge_defaults_to_done(self, seeded_db, capsys):
        from repro.serving.jobs import JobQueue

        queue = JobQueue(seeded_db)
        (job,) = queue.claim(kinds=("retrain_publish",), n=1, worker="w")
        queue.ack(job.job_id, job.claim_token)
        queue.close()
        assert main(["queue", "purge", "--db", str(seeded_db)]) == 0
        assert "purged 1 jobs" in capsys.readouterr().out

    def test_missing_db_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "queue", "inspect", "--db", str(tmp_path / "none.db"),
            "--job-id", "1",
        ]) == 2
        assert "no job queue database" in capsys.readouterr().err

    def test_unknown_job_id_fails_cleanly(self, seeded_db, capsys):
        assert main([
            "queue", "inspect", "--db", str(seeded_db), "--job-id", "99",
        ]) == 2
        assert "queue error" in capsys.readouterr().err
