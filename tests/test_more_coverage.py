"""Additional cross-cutting coverage: paths the main suites touch lightly."""

import numpy as np
import pytest

from repro.active import run_active_learning
from repro.mlcore import RandomForestClassifier


@pytest.fixture(scope="module")
def blobs6():
    """A 6-class problem shaped like the diagnosis task (healthy-majority)."""
    rng = np.random.default_rng(0)
    classes = ["healthy", "cpuoccupy", "cachecopy", "membw", "memleak", "dial"]
    centers = rng.normal(scale=5.0, size=(6, 8))
    X_parts, y_parts = [], []
    for i, cls in enumerate(classes):
        n = 120 if cls == "healthy" else 24
        X_parts.append(centers[i] + rng.normal(size=(n, 8)))
        y_parts.extend([cls] * n)
    X = np.vstack(X_parts)
    y = np.array(y_parts)
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


class TestLoopCombinations:
    def _setup(self, blobs6):
        X, y = blobs6
        seed_idx, seen = [], set()
        for i, label in enumerate(y):
            if label not in seen:
                seen.add(label)
                seed_idx.append(i)
        rest = np.setdiff1d(np.arange(len(y)), seed_idx)
        pool, test = rest[: len(rest) // 2], rest[len(rest) // 2 :]
        return X[seed_idx], y[seed_idx], X[pool], y[pool], X[test], y[test]

    def test_eval_every_with_target(self, blobs6):
        Xs, ys, Xp, yp, Xt, yt = self._setup(blobs6)
        res = run_active_learning(
            RandomForestClassifier(n_estimators=8, random_state=0),
            "margin", Xs, ys, Xp, yp, Xt, yt,
            n_queries=40, eval_every=5, target_f1=0.9, random_state=0,
        )
        # curve stays aligned even with batched evaluation + early stop
        assert len(res.f1) == len(res.n_labeled)
        assert res.n_labeled[0] == 6

    def test_oracle_noise_in_loop_changes_labels(self, blobs6):
        Xs, ys, Xp, yp, Xt, yt = self._setup(blobs6)
        res = run_active_learning(
            RandomForestClassifier(n_estimators=8, random_state=0),
            "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            n_queries=30, oracle_noise=0.5, random_state=0,
        )
        answered = [r.label for r in res.oracle.history]
        truth = [yp[r.pool_index] for r in res.oracle.history]
        assert any(a != t for a, t in zip(answered, truth))

    def test_queried_apps_empty_without_pool_apps(self, blobs6):
        Xs, ys, Xp, yp, Xt, yt = self._setup(blobs6)
        res = run_active_learning(
            RandomForestClassifier(n_estimators=8, random_state=0),
            "uncertainty", Xs, ys, Xp, yp, Xt, yt,
            n_queries=5, random_state=0,
        )
        assert res.queried_apps == []
        assert len(res.queried_labels) == 5


class TestFrameworkRoundtripAfterLearn:
    def test_learned_framework_survives_persistence(self, tiny_config, tmp_path):
        from repro.core import ALBADross, FrameworkConfig, load_framework, save_framework
        from repro.datasets.generate import generate_runs

        runs = generate_runs(tiny_config, rng=2)
        rng = np.random.default_rng(0)
        runs = [runs[i] for i in rng.permutation(len(runs))]
        seed, pool, val = [], [], []
        seen = set()
        for run in runs:
            key = (run.app, run.label)
            if key not in seen:
                seen.add(key)
                seed.append(run)
            elif len(val) < 20:
                val.append(run)
            else:
                pool.append(run)
        fw = ALBADross(
            tiny_config.catalog,
            FrameworkConfig(n_features=50, model_params={"n_estimators": 5},
                            max_queries=4, random_state=0),
        )
        fw.fit_features(seed + pool)
        fw.fit_initial(seed, [r.label for r in seed])
        fw.learn(pool, [r.label for r in pool], val, [r.label for r in val])
        path = save_framework(fw, tmp_path / "learned.pkl")
        restored = load_framework(path)
        a = [d.label for d in fw.diagnose(val[:5])]
        b = [d.label for d in restored.diagnose(val[:5])]
        assert a == b


class TestReportEdgeCases:
    def test_classification_report_with_unseen_predicted_class(self):
        from repro.mlcore import classification_report

        y_true = np.array(["healthy", "healthy", "membw"])
        y_pred = np.array(["healthy", "dial", "membw"])  # dial never true
        report = classification_report(y_true, y_pred)
        assert "dial" in report

    def test_f1_with_explicit_label_universe(self):
        from repro.mlcore import f1_score

        y_true = np.array(["a", "a"])
        y_pred = np.array(["a", "a"])
        per_class = f1_score(
            y_true, y_pred, average=None, labels=np.array(["a", "b"])
        )
        assert per_class[0] == 1.0 and per_class[1] == 0.0


class TestCollectorMissingness:
    def test_missing_rate_zero_versus_high(self, tiny_config):
        from repro.apps.volta_apps import VOLTA_APPS
        from repro.telemetry.collector import Collector
        from repro.telemetry.node import VOLTA_NODE

        clean = Collector(tiny_config.catalog, VOLTA_NODE, missing_rate=0.0)
        lossy = Collector(tiny_config.catalog, VOLTA_NODE, missing_rate=0.08)
        a = clean.collect(VOLTA_APPS["CG"], 0, 64, rng=0)
        b = lossy.collect(VOLTA_APPS["CG"], 0, 64, rng=0)
        assert not np.isnan(a.data).any()
        assert np.isnan(b.data).any()


class TestStrategySanityOnDiagnosisShapedData:
    def test_all_strategies_learn_the_rare_classes(self, blobs6):
        X, y = blobs6
        seed_idx = [int(np.flatnonzero(y == c)[0]) for c in np.unique(y)]
        rest = np.setdiff1d(np.arange(len(y)), seed_idx)
        pool, test = rest[:120], rest[120:]
        from repro.mlcore import f1_score

        for strategy in ("uncertainty", "margin", "entropy"):
            res = run_active_learning(
                RandomForestClassifier(n_estimators=10, random_state=0),
                strategy, X[seed_idx], y[seed_idx], X[pool], y[pool],
                X[test], y[test], n_queries=30, random_state=0,
            )
            assert res.final_f1 > 0.8, strategy
