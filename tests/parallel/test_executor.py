"""Tests for the chunked thread/process-pool executor."""

import os
import pickle
import threading
import time

import pytest

from repro.parallel.executor import (
    Executor,
    close_shared_executors,
    default_workers,
    effective_cpu_count,
    resolve_backend,
    shared_executor,
)


def _square(x):
    return x * x


def _whoami(_):
    return os.getpid()


class TestSerialPath:
    def test_n_workers_one_runs_inline(self):
        ex = Executor(n_workers=1)
        assert ex.map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_empty_input(self):
        assert Executor(n_workers=1).map(_square, []) == []

    def test_single_item_runs_inline(self):
        ex = Executor(n_workers=4)
        assert ex.map(_square, [3]) == [9]

    def test_lambda_ok_serially(self):
        assert Executor(n_workers=1).map(lambda x: x + 1, [1, 2]) == [2, 3]


class TestParallelPath:
    def test_results_ordered(self):
        ex = Executor(n_workers=2)
        assert ex.map(_square, range(40)) == [i * i for i in range(40)]

    def test_work_runs_in_child_processes(self):
        ex = Executor(n_workers=2, chunks_per_worker=2)
        pids = set(ex.map(_whoami, range(16)))
        # on a single-core box the pool may drain every chunk through one
        # worker; what must hold is that no work ran in the parent
        assert pids and os.getpid() not in pids

    def test_matches_serial_results(self):
        serial = Executor(n_workers=1).map(_square, range(25))
        parallel = Executor(n_workers=3).map(_square, range(25))
        assert serial == parallel


class TestConfig:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_invalid_chunks_per_worker(self):
        with pytest.raises(ValueError, match="chunks_per_worker"):
            Executor(chunks_per_worker=0)

    def test_worker_floor(self):
        assert Executor(n_workers=-3).n_workers == 1


class TestEffectiveCpuCount:
    """Pool sizing must follow the affinity mask, not the machine.

    HPC batch systems pin jobs to a core subset; ``os.cpu_count()``
    reports the whole node and oversubscribes the mask.
    """

    def test_uses_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(3)))
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert effective_cpu_count() == 3

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert effective_cpu_count() == 6

    def test_falls_back_when_affinity_raises(self, monkeypatch):
        def _boom(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", _boom)
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        assert effective_cpu_count() == 2

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert effective_cpu_count() == 1


class TestDefaultWorkers:
    """The engine's serving path leans on these defaults; pin them down."""

    def test_leaves_one_core_free(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(8)))
        assert default_workers() == 7

    def test_single_core_mask_still_gets_one_worker(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})
        assert default_workers() == 1

    def test_unknown_core_count_falls_back(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1

    def test_none_n_workers_uses_default(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(5)))
        assert Executor(n_workers=None).n_workers == 4


class TestBackends:
    def test_thread_backend_matches_serial(self):
        with Executor(n_workers=4, backend="thread") as ex:
            assert ex.map(_square, range(30)) == [i * i for i in range(30)]

    def test_thread_backend_keeps_unpicklable_fns(self):
        # no pickle boundary: closures are fine on the thread backend
        offset = 7
        with Executor(n_workers=2, backend="thread") as ex:
            assert ex.map(lambda x: x + offset, range(6)) == list(range(7, 13))

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Executor(n_workers=2, backend="greenlet")

    def test_resolve_auto_multicore_is_process(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(4)))
        assert resolve_backend("auto") == "process"

    def test_resolve_auto_one_core_is_thread(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})
        assert resolve_backend("auto") == "thread"

    def test_auto_on_one_core_clamps_workers(self, monkeypatch):
        # n_jobs must never be a slowdown: on a one-core mask auto
        # degrades to the serial path instead of thrashing the GIL
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})
        assert Executor(n_workers=8, backend="auto").n_workers == 1

    def test_explicit_thread_backend_keeps_requested_workers(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0})
        assert Executor(n_workers=8, backend="thread").n_workers == 8

    def test_auto_multicore_keeps_requested_workers(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(4)))
        ex = Executor(n_workers=8, backend="auto")
        assert ex.backend == "process"
        assert ex.n_workers == 8


def _slow_square(x):
    time.sleep(0.02)
    return x * x


class TestCloseMapRace:
    """Regression: close() racing an in-flight map must not break the pool.

    The old executor shut the pool down under a running ``pool.map``,
    surfacing ``BrokenProcessPool`` from the mapping thread. ``map`` and
    ``close`` now serialize on the executor lock: close waits for the
    in-flight map, and a later map lazily restarts the pool.
    """

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_close_waits_for_inflight_map(self, backend):
        ex = Executor(n_workers=2, backend=backend)
        results: list = []
        errors: list = []

        def _mapper():
            try:
                results.append(ex.map(_slow_square, range(8)))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        t = threading.Thread(target=_mapper)
        t.start()
        time.sleep(0.05)  # let the map reach the pool
        ex.close()
        t.join(timeout=30.0)
        assert not t.is_alive()
        assert errors == []
        assert results == [[i * i for i in range(8)]]
        # the executor stays usable after the racing close
        assert ex.map(_square, range(4)) == [0, 1, 4, 9]
        ex.close()


class TestSharedExecutors:
    def test_same_key_returns_same_instance(self):
        a = shared_executor(2, backend="thread")
        b = shared_executor(2, backend="thread")
        assert a is b

    def test_distinct_keys_get_distinct_pools(self):
        a = shared_executor(2, backend="thread")
        b = shared_executor(3, backend="thread")
        assert a is not b

    def test_close_shared_executors_resets_registry(self):
        a = shared_executor(2, backend="thread")
        close_shared_executors()
        assert shared_executor(2, backend="thread") is not a

    def test_auto_key_resolves_per_machine(self):
        ex = shared_executor(2, backend="auto")
        assert ex.backend == resolve_backend("auto")


class TestSerialFallback:
    """n_workers <= 1 must never touch a process pool."""

    def test_zero_workers_runs_inline(self):
        assert Executor(n_workers=0).map(_square, range(4)) == [0, 1, 4, 9]

    def test_serial_path_avoids_pool(self, monkeypatch):
        import repro.parallel.executor as executor_mod

        def _explode(*args, **kwargs):
            raise AssertionError("serial path must not build a process pool")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _explode)
        assert Executor(n_workers=1).map(_square, range(6)) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_single_item_avoids_pool_even_with_workers(self, monkeypatch):
        import repro.parallel.executor as executor_mod

        def _explode(*args, **kwargs):
            raise AssertionError("single-item map must stay inline")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _explode)
        assert Executor(n_workers=8).map(_square, [7]) == [49]

    def test_unpicklable_fn_ok_serially(self):
        results = Executor(n_workers=1).map(lambda x: x * 10, range(3))
        assert results == [0, 10, 20]

    def test_serial_preserves_generator_input(self):
        assert Executor(n_workers=1).map(_square, (i for i in range(5))) == [
            0, 1, 4, 9, 16,
        ]


class TestPoolReuse:
    def test_pool_persists_across_maps(self):
        ex = Executor(n_workers=2)
        try:
            ex.map(_square, range(4))
            pool1 = ex._pool
            ex.map(_square, range(4))
            assert ex._pool is pool1  # no spawn/teardown per map
        finally:
            ex.close()

    def test_lazy_start(self):
        ex = Executor(n_workers=2)
        assert ex._pool is None  # nothing spawned until first parallel map
        ex.close()

    def test_close_idempotent_and_restartable(self):
        ex = Executor(n_workers=2)
        assert ex.map(_square, range(4)) == [0, 1, 4, 9]
        ex.close()
        ex.close()  # second close is a no-op
        assert ex._pool is None
        # a closed executor lazily restarts on the next map
        assert ex.map(_square, range(4)) == [0, 1, 4, 9]
        ex.close()

    def test_context_manager_closes(self):
        with Executor(n_workers=2) as ex:
            assert ex.map(_square, range(4)) == [0, 1, 4, 9]
            assert ex._pool is not None
        assert ex._pool is None

    def test_serial_executor_never_starts_a_pool(self):
        ex = Executor(n_workers=1)
        ex.map(_square, range(10))
        assert ex._pool is None

    def test_executor_with_live_pool_is_picklable(self):
        # objects that reference their executor (a bound map_fn) get
        # pickled into worker processes; the live pool must not ride along
        ex = Executor(n_workers=2)
        try:
            ex.map(_square, range(4))  # starts the pool
            clone = pickle.loads(pickle.dumps(ex))
            assert clone._pool is None
            assert clone.n_workers == 2
            assert clone.map(_square, range(3)) == [0, 1, 4]
            clone.close()
        finally:
            ex.close()

    def test_executor_with_live_thread_pool_is_picklable(self):
        ex = Executor(n_workers=2, backend="thread")
        try:
            ex.map(_square, range(4))
            clone = pickle.loads(pickle.dumps(ex))
            assert clone._pool is None
            assert clone.backend == "thread"
            assert clone.map(_square, range(3)) == [0, 1, 4]
            clone.close()
        finally:
            ex.close()


def _cube(x):
    return x * x * x


class TestWorkerFnCache:
    """The map function ships once per pool, not once per chunk."""

    def test_pool_is_seeded_with_first_fn(self):
        with Executor(n_workers=2, backend="process") as ex:
            ex.map(_square, range(8))
            assert ex._seeded_digest is not None

    def test_same_fn_reuses_seeded_pool(self):
        with Executor(n_workers=2, backend="process") as ex:
            ex.map(_square, range(8))
            pool = ex._pool
            assert ex.map(_square, range(8)) == [i * i for i in range(8)]
            assert ex._pool is pool

    def test_different_fn_same_pool_still_correct(self):
        with Executor(n_workers=2, backend="process") as ex:
            assert ex.map(_square, range(6)) == [i * i for i in range(6)]
            assert ex.map(_cube, range(6)) == [i ** 3 for i in range(6)]

    def test_seed_cleared_on_close(self):
        ex = Executor(n_workers=2, backend="process")
        ex.map(_square, range(8))
        ex.close()
        assert ex._seeded_digest is None
