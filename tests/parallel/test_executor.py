"""Tests for the chunked process-pool executor."""

import os

import pytest

from repro.parallel.executor import Executor, default_workers


def _square(x):
    return x * x


def _whoami(_):
    return os.getpid()


class TestSerialPath:
    def test_n_workers_one_runs_inline(self):
        ex = Executor(n_workers=1)
        assert ex.map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_empty_input(self):
        assert Executor(n_workers=1).map(_square, []) == []

    def test_single_item_runs_inline(self):
        ex = Executor(n_workers=4)
        assert ex.map(_square, [3]) == [9]

    def test_lambda_ok_serially(self):
        assert Executor(n_workers=1).map(lambda x: x + 1, [1, 2]) == [2, 3]


class TestParallelPath:
    def test_results_ordered(self):
        ex = Executor(n_workers=2)
        assert ex.map(_square, range(40)) == [i * i for i in range(40)]

    def test_work_runs_in_child_processes(self):
        ex = Executor(n_workers=2, chunks_per_worker=2)
        pids = set(ex.map(_whoami, range(16)))
        # on a single-core box the pool may drain every chunk through one
        # worker; what must hold is that no work ran in the parent
        assert pids and os.getpid() not in pids

    def test_matches_serial_results(self):
        serial = Executor(n_workers=1).map(_square, range(25))
        parallel = Executor(n_workers=3).map(_square, range(25))
        assert serial == parallel


class TestConfig:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_invalid_chunks_per_worker(self):
        with pytest.raises(ValueError, match="chunks_per_worker"):
            Executor(chunks_per_worker=0)

    def test_worker_floor(self):
        assert Executor(n_workers=-3).n_workers == 1


class TestDefaultWorkers:
    """The engine's serving path leans on these defaults; pin them down."""

    def test_leaves_one_core_free(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert default_workers() == 7

    def test_single_core_box_still_gets_one_worker(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert default_workers() == 1

    def test_unknown_core_count_falls_back(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1

    def test_none_n_workers_uses_default(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert Executor(n_workers=None).n_workers == 4


class TestSerialFallback:
    """n_workers <= 1 must never touch a process pool."""

    def test_zero_workers_runs_inline(self):
        assert Executor(n_workers=0).map(_square, range(4)) == [0, 1, 4, 9]

    def test_serial_path_avoids_pool(self, monkeypatch):
        import repro.parallel.executor as executor_mod

        def _explode(*args, **kwargs):
            raise AssertionError("serial path must not build a process pool")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _explode)
        assert Executor(n_workers=1).map(_square, range(6)) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_single_item_avoids_pool_even_with_workers(self, monkeypatch):
        import repro.parallel.executor as executor_mod

        def _explode(*args, **kwargs):
            raise AssertionError("single-item map must stay inline")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _explode)
        assert Executor(n_workers=8).map(_square, [7]) == [49]

    def test_unpicklable_fn_ok_serially(self):
        results = Executor(n_workers=1).map(lambda x: x * 10, range(3))
        assert results == [0, 10, 20]

    def test_serial_preserves_generator_input(self):
        assert Executor(n_workers=1).map(_square, (i for i in range(5))) == [
            0, 1, 4, 9, 16,
        ]


class TestPoolReuse:
    def test_pool_persists_across_maps(self):
        ex = Executor(n_workers=2)
        try:
            ex.map(_square, range(4))
            pool1 = ex._pool
            ex.map(_square, range(4))
            assert ex._pool is pool1  # no spawn/teardown per map
        finally:
            ex.close()

    def test_lazy_start(self):
        ex = Executor(n_workers=2)
        assert ex._pool is None  # nothing spawned until first parallel map
        ex.close()

    def test_close_idempotent_and_restartable(self):
        ex = Executor(n_workers=2)
        assert ex.map(_square, range(4)) == [0, 1, 4, 9]
        ex.close()
        ex.close()  # second close is a no-op
        assert ex._pool is None
        # a closed executor lazily restarts on the next map
        assert ex.map(_square, range(4)) == [0, 1, 4, 9]
        ex.close()

    def test_context_manager_closes(self):
        with Executor(n_workers=2) as ex:
            assert ex.map(_square, range(4)) == [0, 1, 4, 9]
            assert ex._pool is not None
        assert ex._pool is None

    def test_serial_executor_never_starts_a_pool(self):
        ex = Executor(n_workers=1)
        ex.map(_square, range(10))
        assert ex._pool is None

    def test_executor_with_live_pool_is_picklable(self):
        # objects that reference their executor (a bound map_fn) get
        # pickled into worker processes; the live pool must not ride along
        import pickle

        ex = Executor(n_workers=2)
        try:
            ex.map(_square, range(4))  # starts the pool
            clone = pickle.loads(pickle.dumps(ex))
            assert clone._pool is None
            assert clone.n_workers == 2
            assert clone.map(_square, range(3)) == [0, 1, 4]
            clone.close()
        finally:
            ex.close()
