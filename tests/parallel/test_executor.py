"""Tests for the chunked process-pool executor."""

import os

import pytest

from repro.parallel.executor import Executor, default_workers


def _square(x):
    return x * x


def _whoami(_):
    return os.getpid()


class TestSerialPath:
    def test_n_workers_one_runs_inline(self):
        ex = Executor(n_workers=1)
        assert ex.map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_empty_input(self):
        assert Executor(n_workers=1).map(_square, []) == []

    def test_single_item_runs_inline(self):
        ex = Executor(n_workers=4)
        assert ex.map(_square, [3]) == [9]

    def test_lambda_ok_serially(self):
        assert Executor(n_workers=1).map(lambda x: x + 1, [1, 2]) == [2, 3]


class TestParallelPath:
    def test_results_ordered(self):
        ex = Executor(n_workers=2)
        assert ex.map(_square, range(40)) == [i * i for i in range(40)]

    def test_work_runs_in_child_processes(self):
        ex = Executor(n_workers=2, chunks_per_worker=2)
        pids = set(ex.map(_whoami, range(16)))
        # on a single-core box the pool may drain every chunk through one
        # worker; what must hold is that no work ran in the parent
        assert pids and os.getpid() not in pids

    def test_matches_serial_results(self):
        serial = Executor(n_workers=1).map(_square, range(25))
        parallel = Executor(n_workers=3).map(_square, range(25))
        assert serial == parallel


class TestConfig:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_invalid_chunks_per_worker(self):
        with pytest.raises(ValueError, match="chunks_per_worker"):
            Executor(chunks_per_worker=0)

    def test_worker_floor(self):
        assert Executor(n_workers=-3).n_workers == 1


class TestDefaultWorkers:
    """The engine's serving path leans on these defaults; pin them down."""

    def test_leaves_one_core_free(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert default_workers() == 7

    def test_single_core_box_still_gets_one_worker(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert default_workers() == 1

    def test_unknown_core_count_falls_back(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1

    def test_none_n_workers_uses_default(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert Executor(n_workers=None).n_workers == 4


class TestSerialFallback:
    """n_workers <= 1 must never touch a process pool."""

    def test_zero_workers_runs_inline(self):
        assert Executor(n_workers=0).map(_square, range(4)) == [0, 1, 4, 9]

    def test_serial_path_avoids_pool(self, monkeypatch):
        import repro.parallel.executor as executor_mod

        def _explode(*args, **kwargs):
            raise AssertionError("serial path must not build a process pool")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _explode)
        assert Executor(n_workers=1).map(_square, range(6)) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_single_item_avoids_pool_even_with_workers(self, monkeypatch):
        import repro.parallel.executor as executor_mod

        def _explode(*args, **kwargs):
            raise AssertionError("single-item map must stay inline")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _explode)
        assert Executor(n_workers=8).map(_square, [7]) == [49]

    def test_unpicklable_fn_ok_serially(self):
        results = Executor(n_workers=1).map(lambda x: x * 10, range(3))
        assert results == [0, 10, 20]

    def test_serial_preserves_generator_input(self):
        assert Executor(n_workers=1).map(_square, (i for i in range(5))) == [
            0, 1, 4, 9, 16,
        ]
