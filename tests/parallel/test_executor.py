"""Tests for the chunked process-pool executor."""

import os

import pytest

from repro.parallel.executor import Executor, default_workers


def _square(x):
    return x * x


def _whoami(_):
    return os.getpid()


class TestSerialPath:
    def test_n_workers_one_runs_inline(self):
        ex = Executor(n_workers=1)
        assert ex.map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_empty_input(self):
        assert Executor(n_workers=1).map(_square, []) == []

    def test_single_item_runs_inline(self):
        ex = Executor(n_workers=4)
        assert ex.map(_square, [3]) == [9]

    def test_lambda_ok_serially(self):
        assert Executor(n_workers=1).map(lambda x: x + 1, [1, 2]) == [2, 3]


class TestParallelPath:
    def test_results_ordered(self):
        ex = Executor(n_workers=2)
        assert ex.map(_square, range(40)) == [i * i for i in range(40)]

    def test_work_runs_in_child_processes(self):
        ex = Executor(n_workers=2, chunks_per_worker=2)
        pids = set(ex.map(_whoami, range(16)))
        # on a single-core box the pool may drain every chunk through one
        # worker; what must hold is that no work ran in the parent
        assert pids and os.getpid() not in pids

    def test_matches_serial_results(self):
        serial = Executor(n_workers=1).map(_square, range(25))
        parallel = Executor(n_workers=3).map(_square, range(25))
        assert serial == parallel


class TestConfig:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_invalid_chunks_per_worker(self):
        with pytest.raises(ValueError, match="chunks_per_worker"):
            Executor(chunks_per_worker=0)

    def test_worker_floor(self):
        assert Executor(n_workers=-3).n_workers == 1
