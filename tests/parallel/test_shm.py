"""Lifecycle tests for the shared-memory transport.

The contract under test: every ``SharedArray`` owner unlinks its
``/dev/shm`` segment exactly once — on normal exit, on exceptions, on
garbage collection, and even when a pool worker attached to the segment
crashes hard. A leaked segment on a production HPC node eats tmpfs
until reboot, so these tests diff ``active_segments()`` around every
scenario.
"""

import gc
import pickle

import numpy as np
import pytest

from repro.parallel import Executor, active_segments
from repro.parallel.shm import SharedArray, SharedArrayHandle


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = set(active_segments())
    yield
    leaked = sorted(set(active_segments()) - before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def _matrix() -> np.ndarray:
    return np.arange(24.0).reshape(6, 4)


class TestSharedArrayRoundtrip:
    def test_owner_sees_copied_data(self):
        data = _matrix()
        with SharedArray(data) as sh:
            assert np.array_equal(sh.array, data)
            # a copy, not a view: mutating the source must not leak through
            data[0, 0] = 99.0
            assert sh.array[0, 0] == 0.0

    def test_attachment_sees_same_bytes(self):
        with SharedArray(_matrix()) as sh:
            with sh.handle.open() as att:
                assert np.array_equal(att.array, _matrix())
                assert att.array.dtype == np.float64
                assert att.array.shape == (6, 4)

    def test_handle_is_picklable(self):
        with SharedArray(_matrix()) as sh:
            handle = pickle.loads(pickle.dumps(sh.handle))
            assert isinstance(handle, SharedArrayHandle)
            with handle.open() as att:
                assert np.array_equal(att.array, _matrix())

    def test_non_contiguous_input(self):
        data = np.arange(40.0).reshape(10, 4)[::2]  # strided view
        with SharedArray(data) as sh:
            assert np.array_equal(sh.array, data)

    def test_zero_size_array(self):
        with SharedArray(np.empty((0, 3))) as sh:
            with sh.handle.open() as att:
                assert att.array.shape == (0, 3)


class TestUnlinkOnExit:
    def test_normal_exit_unlinks(self):
        with SharedArray(_matrix()) as sh:
            name = sh.handle.name
            assert name in active_segments()
        assert name not in active_segments()

    def test_exception_exit_unlinks(self):
        name = None
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArray(_matrix()) as sh:
                name = sh.handle.name
                raise RuntimeError("boom")
        assert name not in active_segments()

    def test_close_is_idempotent(self):
        sh = SharedArray(_matrix())
        sh.close()
        sh.close()
        assert sh.closed

    def test_gc_unlinks_unclosed_owner(self):
        sh = SharedArray(_matrix())
        name = sh.handle.name
        assert name in active_segments()
        del sh
        gc.collect()
        assert name not in active_segments()

    def test_closed_owner_rejects_array_access(self):
        sh = SharedArray(_matrix())
        sh.close()
        assert sh.array is None


def _read_cell(args):
    handle, i = args
    with handle.open() as att:
        return float(att.array[i, 0])


def _crash(args):
    import os

    os._exit(13)  # hard kill: no finally blocks, no atexit


class TestWorkerLifecycles:
    def test_workers_attach_and_owner_unlinks(self):
        data = _matrix()
        with SharedArray(data) as sh:
            with Executor(n_workers=2, backend="process") as ex:
                out = ex.map(
                    _read_cell, [(sh.handle, i) for i in range(len(data))]
                )
        assert out == [float(v) for v in data[:, 0]]

    def test_worker_crash_leaves_no_segment(self):
        from concurrent.futures.process import BrokenProcessPool

        with SharedArray(_matrix()) as sh:
            name = sh.handle.name
            ex = Executor(n_workers=2, backend="process")
            try:
                with pytest.raises(BrokenProcessPool):
                    ex.map(_crash, [(sh.handle, i) for i in range(6)])
            finally:
                ex.close()
        assert name not in active_segments()

    def test_exception_during_map_leaves_no_segment(self):
        with SharedArray(_matrix()) as sh:
            name = sh.handle.name
            with Executor(n_workers=2, backend="process") as ex:
                with pytest.raises(IndexError):
                    ex.map(
                        _read_cell, [(sh.handle, i) for i in range(100)]
                    )
        assert name not in active_segments()
