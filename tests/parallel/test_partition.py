"""Tests for block/cyclic partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.partition import block_partition, chunk_sizes, cyclic_partition


class TestChunkSizes:
    def test_even_division(self):
        assert chunk_sizes(12, 4) == [3, 3, 3, 3]

    def test_remainder_goes_to_front(self):
        assert chunk_sizes(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_items(self):
        assert chunk_sizes(2, 5) == [1, 1, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_sizes(5, 0)
        with pytest.raises(ValueError):
            chunk_sizes(-1, 2)

    @given(n=st.integers(0, 500), p=st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_sizes_sum_and_balance(self, n, p):
        sizes = chunk_sizes(n, p)
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1


class TestBlockPartition:
    def test_blocks_are_contiguous(self):
        parts = block_partition(10, 3)
        for part in parts:
            if len(part) > 1:
                assert np.all(np.diff(part) == 1)

    @given(n=st.integers(0, 300), p=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_exact_cover(self, n, p):
        parts = block_partition(n, p)
        merged = np.concatenate(parts) if parts else np.array([])
        assert np.array_equal(merged, np.arange(n))


class TestCyclicPartition:
    def test_round_robin_assignment(self):
        parts = cyclic_partition(7, 3)
        assert list(parts[0]) == [0, 3, 6]
        assert list(parts[1]) == [1, 4]
        assert list(parts[2]) == [2, 5]

    @given(n=st.integers(0, 300), p=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_exact_cover_unordered(self, n, p):
        parts = cyclic_partition(n, p)
        merged = np.sort(np.concatenate(parts)) if parts else np.array([])
        assert np.array_equal(merged, np.arange(n))

    def test_validation(self):
        with pytest.raises(ValueError):
            cyclic_partition(5, 0)
