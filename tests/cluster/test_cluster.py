"""Tests for the multi-node cluster simulator."""

import numpy as np
import pytest

from repro.anomalies import get_anomaly
from repro.apps.volta_apps import VOLTA_APPS
from repro.cluster import ClusterSim, Job
from repro.telemetry.catalog import RESOURCE_DIMS, build_catalog
from repro.telemetry.node import VOLTA_NODE


@pytest.fixture(scope="module")
def sim():
    return ClusterSim(
        catalog=build_catalog(n_cores=2, n_nics=1, n_extra_cray=4),
        node_profile=VOLTA_NODE,
        n_nodes=8,
        missing_rate=0.0,
    )


class TestJob:
    def test_validation(self):
        app = VOLTA_APPS["CG"]
        with pytest.raises(ValueError, match="node_count"):
            Job(app=app, node_count=0)
        with pytest.raises(ValueError, match="duration"):
            Job(app=app, duration=2)
        with pytest.raises(ValueError, match="input_deck"):
            Job(app=app, input_deck=9)
        with pytest.raises(ValueError, match="intensity"):
            Job(app=app, anomaly=get_anomaly("membw"), intensity=0.0)

    def test_label_map_healthy_job(self):
        job = Job(app=VOLTA_APPS["CG"], node_count=4)
        assert set(job.label_for_node.values()) == {"healthy"}

    def test_label_map_anomalous_job(self):
        job = Job(
            app=VOLTA_APPS["CG"], node_count=4,
            anomaly=get_anomaly("membw"), intensity=0.5,
        )
        labels = job.label_for_node
        assert labels[0] == "membw"
        assert all(labels[r] == "healthy" for r in range(1, 4))


class TestScheduling:
    def test_job_too_large_rejected(self, sim):
        with pytest.raises(ValueError, match="cluster has"):
            sim.run_job(Job(app=VOLTA_APPS["CG"], node_count=99), rng=0)

    def test_allocation_cycles_through_pool(self):
        sim = ClusterSim(
            catalog=build_catalog(n_cores=1, n_nics=1, n_extra_cray=4),
            node_profile=VOLTA_NODE,
            n_nodes=6,
            missing_rate=0.0,
        )
        a = sim.run_job(Job(app=VOLTA_APPS["CG"], node_count=4, duration=32), rng=0)
        b = sim.run_job(Job(app=VOLTA_APPS["BT"], node_count=4, duration=32), rng=1)
        ids_a = [r.node_id for r in a]
        ids_b = [r.node_id for r in b]
        assert ids_a == [0, 1, 2, 3]
        assert ids_b == [4, 5, 0, 1]  # wraps around the pool

    def test_utilization_history(self):
        sim = ClusterSim(
            catalog=build_catalog(n_cores=1, n_nics=1, n_extra_cray=4),
            node_profile=VOLTA_NODE,
            n_nodes=4,
            missing_rate=0.0,
        )
        sim.run_job(Job(app=VOLTA_APPS["CG"], node_count=2, duration=32), rng=0)
        sim.run_job(Job(app=VOLTA_APPS["CG"], node_count=2, duration=32), rng=0)
        counts = sim.utilization_history
        assert counts[0] == 1 and counts[2] == 1
        assert sum(counts.values()) == 4


class TestPerNodeRecords:
    def test_one_record_per_node(self, sim):
        records = sim.run_job(
            Job(app=VOLTA_APPS["CG"], node_count=4, duration=64), rng=0
        )
        assert len(records) == 4
        assert all(r.data.shape[0] == 64 for r in records)

    def test_anomalous_job_labels_first_node_only(self, sim):
        records = sim.run_job(
            Job(
                app=VOLTA_APPS["CG"], node_count=4, duration=64,
                anomaly=get_anomaly("cpuoccupy"), intensity=1.0,
            ),
            rng=0,
        )
        assert records[0].label == "cpuoccupy"
        assert records[0].intensity == 1.0
        assert all(r.label == "healthy" for r in records[1:])
        assert all(r.intensity == 0.0 for r in records[1:])

    def test_anomalous_node_telemetry_differs_from_siblings(self, sim):
        records = sim.run_job(
            Job(
                app=VOLTA_APPS["CG"], node_count=3, duration=128,
                anomaly=get_anomaly("cpuoccupy"), intensity=1.0,
            ),
            rng=5,
        )
        i = records[0].metric_names.index("procstat.cpu0.user")
        rate0 = np.diff(records[0].data[:, i]).mean()
        rate1 = np.diff(records[1].data[:, i]).mean()
        assert rate0 > rate1 * 1.15

    def test_sibling_nodes_are_correlated_but_distinct(self, sim):
        records = sim.run_job(
            Job(app=VOLTA_APPS["CG"], node_count=3, duration=96), rng=2
        )
        a, b = records[1].data, records[2].data
        assert not np.array_equal(a, b)
        # same workload: column means stay close
        rel = np.abs(a.mean(0) - b.mean(0)) / (np.abs(a.mean(0)) + 1e-9)
        assert np.median(rel) < 0.2

    def test_rank0_has_more_io(self, sim):
        records = sim.run_job(
            Job(app=VOLTA_APPS["CG"], node_count=4, duration=128), rng=3
        )
        i = records[0].metric_names.index("lustre.write_bytes")
        io0 = np.diff(records[0].data[:, i]).mean()
        io2 = np.diff(records[2].data[:, i]).mean()
        assert io0 > io2


class TestCampaign:
    def test_flat_record_list(self, sim):
        jobs = [
            Job(app=VOLTA_APPS["CG"], node_count=2, duration=32),
            Job(
                app=VOLTA_APPS["BT"], node_count=3, duration=32,
                anomaly=get_anomaly("memleak"), intensity=0.5,
            ),
        ]
        records = sim.run_campaign(jobs, rng=0)
        assert len(records) == 5
        labels = [r.label for r in records]
        assert labels.count("memleak") == 1
        assert labels.count("healthy") == 4

    def test_campaign_reproducible(self):
        def fresh():
            return ClusterSim(
                catalog=build_catalog(n_cores=1, n_nics=1, n_extra_cray=4),
                node_profile=VOLTA_NODE,
                n_nodes=4,
                missing_rate=0.0,
            )
        jobs = [Job(app=VOLTA_APPS["CG"], node_count=2, duration=32)]
        a = fresh().run_campaign(jobs, rng=7)
        b = fresh().run_campaign(jobs, rng=7)
        assert np.array_equal(a[0].data, b[0].data)
