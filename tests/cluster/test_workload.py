"""Tests for the production workload generator."""

from collections import Counter

import numpy as np
import pytest

from repro.apps.volta_apps import VOLTA_APPS
from repro.cluster.workload import WorkloadSpec, generate_stream


@pytest.fixture(scope="module")
def spec():
    apps = {k: VOLTA_APPS[k] for k in ("CG", "BT", "Kripke")}
    return WorkloadSpec(apps=apps, duration=96, anomaly_rate=0.2)


class TestSpecValidation:
    def test_needs_apps(self):
        with pytest.raises(ValueError, match="at least one"):
            WorkloadSpec(apps={})

    def test_anomaly_rate_range(self):
        with pytest.raises(ValueError, match="anomaly_rate"):
            WorkloadSpec(apps={"CG": VOLTA_APPS["CG"]}, anomaly_rate=1.0)

    def test_unknown_app_weight(self):
        with pytest.raises(ValueError, match="unknown apps"):
            WorkloadSpec(apps={"CG": VOLTA_APPS["CG"]}, app_weights={"HAL": 1.0})

    def test_unknown_anomaly_weight(self):
        with pytest.raises(ValueError, match="unknown anomalies"):
            WorkloadSpec(
                apps={"CG": VOLTA_APPS["CG"]}, anomaly_weights={"gremlin": 1.0}
            )

    def test_node_weight_length(self):
        with pytest.raises(ValueError, match="node_count_weights"):
            WorkloadSpec(
                apps={"CG": VOLTA_APPS["CG"]},
                node_counts=(4, 8),
                node_count_weights=(1.0,),
            )


class TestStream:
    def test_count_and_types(self, spec):
        jobs = generate_stream(spec, 50, rng=0)
        assert len(jobs) == 50
        assert {j.app.name for j in jobs} <= {"CG", "BT", "Kripke"}

    def test_negative_count(self, spec):
        with pytest.raises(ValueError, match="n_jobs"):
            generate_stream(spec, -1)

    def test_anomaly_rate_respected(self, spec):
        jobs = generate_stream(spec, 2000, rng=1)
        rate = sum(1 for j in jobs if j.anomaly is not None) / len(jobs)
        assert rate == pytest.approx(0.2, abs=0.03)

    def test_app_weights_respected(self):
        apps = {k: VOLTA_APPS[k] for k in ("CG", "BT")}
        spec = WorkloadSpec(
            apps=apps, app_weights={"CG": 3.0, "BT": 1.0}, duration=96
        )
        jobs = generate_stream(spec, 2000, rng=2)
        counts = Counter(j.app.name for j in jobs)
        assert counts["CG"] / counts["BT"] == pytest.approx(3.0, rel=0.25)

    def test_node_count_distribution(self):
        spec = WorkloadSpec(
            apps={"CG": VOLTA_APPS["CG"]},
            node_counts=(4, 8, 16),
            node_count_weights=(0.7, 0.2, 0.1),
            duration=96,
        )
        jobs = generate_stream(spec, 2000, rng=3)
        counts = Counter(j.node_count for j in jobs)
        assert counts[4] / len(jobs) == pytest.approx(0.7, abs=0.05)

    def test_input_decks_cover_range(self, spec):
        decks = {j.input_deck for j in generate_stream(spec, 300, rng=4)}
        assert decks == {0, 1, 2}

    def test_intensities_from_grid(self, spec):
        jobs = generate_stream(spec, 500, rng=5)
        intensities = {j.intensity for j in jobs if j.anomaly is not None}
        assert intensities <= set(spec.intensities)

    def test_reproducible(self, spec):
        a = generate_stream(spec, 30, rng=9)
        b = generate_stream(spec, 30, rng=9)
        assert [(j.app.name, j.input_deck, j.intensity) for j in a] == [
            (j.app.name, j.input_deck, j.intensity) for j in b
        ]

    def test_stream_runs_on_cluster(self, spec):
        from repro.cluster import ClusterSim
        from repro.telemetry.catalog import build_catalog
        from repro.telemetry.node import VOLTA_NODE

        sim = ClusterSim(
            catalog=build_catalog(n_cores=1, n_nics=1, n_extra_cray=4),
            node_profile=VOLTA_NODE,
            n_nodes=16,
            missing_rate=0.0,
        )
        jobs = generate_stream(spec, 5, rng=6)
        records = sim.run_campaign(jobs, rng=0)
        assert len(records) == sum(j.node_count for j in jobs)
