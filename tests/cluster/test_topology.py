"""Tests for switch topology and neighbor-job contention."""

import numpy as np
import pytest

from repro.apps.volta_apps import VOLTA_APPS
from repro.cluster import ClusterSim, Job
from repro.cluster.topology import (
    VOLTA_TOPOLOGY,
    SwitchTopology,
    contention_factors,
)
from repro.telemetry.catalog import build_catalog
from repro.telemetry.node import VOLTA_NODE


class TestSwitchTopology:
    def test_volta_layout(self):
        """Paper: 52 nodes in 13 switches of 4."""
        assert VOLTA_TOPOLOGY.n_nodes == 52
        assert VOLTA_TOPOLOGY.n_switches == 13
        assert VOLTA_TOPOLOGY.switch_of(0) == 0
        assert VOLTA_TOPOLOGY.switch_of(51) == 12

    def test_neighbors(self):
        topo = SwitchTopology(n_nodes=8, nodes_per_switch=4)
        assert topo.neighbors(0) == [1, 2, 3]
        assert topo.neighbors(5) == [4, 6, 7]

    def test_partial_last_switch(self):
        topo = SwitchTopology(n_nodes=6, nodes_per_switch=4)
        assert topo.n_switches == 2
        assert topo.neighbors(5) == [4]

    def test_node_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            VOLTA_TOPOLOGY.switch_of(99)

    def test_validation(self):
        with pytest.raises(ValueError):
            SwitchTopology(n_nodes=0)
        with pytest.raises(ValueError):
            SwitchTopology(n_nodes=4, switch_bandwidth=0.0)


class TestContentionFactors:
    def test_uncontended_switch_is_unity(self):
        topo = SwitchTopology(n_nodes=8, nodes_per_switch=4, switch_bandwidth=2.0)
        factors = contention_factors(topo, {0: 0.5, 1: 0.5})
        assert factors == {0: 1.0, 1: 1.0}

    def test_oversubscribed_switch_shares_proportionally(self):
        topo = SwitchTopology(n_nodes=4, nodes_per_switch=4, switch_bandwidth=2.0)
        factors = contention_factors(topo, {0: 2.0, 1: 2.0})
        assert factors[0] == pytest.approx(0.5)
        assert factors[1] == pytest.approx(0.5)

    def test_contention_is_switch_local(self):
        topo = SwitchTopology(n_nodes=8, nodes_per_switch=4, switch_bandwidth=1.0)
        factors = contention_factors(topo, {0: 3.0, 4: 0.2})
        assert factors[0] < 0.5
        assert factors[4] == 1.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            contention_factors(VOLTA_TOPOLOGY, {0: -1.0})


class TestConcurrentExecution:
    @pytest.fixture(scope="class")
    def sim(self):
        return ClusterSim(
            catalog=build_catalog(n_cores=2, n_nics=1, n_extra_cray=4),
            node_profile=VOLTA_NODE,
            n_nodes=8,
            missing_rate=0.0,
            topology=SwitchTopology(
                n_nodes=8, nodes_per_switch=4, switch_bandwidth=1.2
            ),
        )

    def test_requires_topology(self):
        sim = ClusterSim(
            catalog=build_catalog(n_cores=1, n_nics=1, n_extra_cray=4),
            node_profile=VOLTA_NODE,
            n_nodes=4,
            missing_rate=0.0,
        )
        with pytest.raises(RuntimeError, match="SwitchTopology"):
            sim.run_concurrent([Job(app=VOLTA_APPS["CG"], node_count=2, duration=32)])

    def test_mismatched_durations_rejected(self, sim):
        jobs = [
            Job(app=VOLTA_APPS["CG"], node_count=2, duration=32),
            Job(app=VOLTA_APPS["BT"], node_count=2, duration=64),
        ]
        with pytest.raises(ValueError, match="share a duration"):
            sim.run_concurrent(jobs)

    def test_too_many_nodes_rejected(self, sim):
        jobs = [Job(app=VOLTA_APPS["CG"], node_count=5, duration=32)] * 2
        with pytest.raises(ValueError, match="concurrent batch"):
            sim.run_concurrent(jobs)

    def test_empty_batch(self, sim):
        assert sim.run_concurrent([]) == []

    def test_records_for_all_jobs(self, sim):
        jobs = [
            Job(app=VOLTA_APPS["CG"], node_count=4, duration=64),
            Job(app=VOLTA_APPS["MiniGhost"], node_count=4, duration=64),
        ]
        records = sim.run_concurrent(jobs, rng=0)
        assert len(records) == 8
        assert {r.app for r in records} == {"CG", "MiniGhost"}

    def test_neighbor_contention_reduces_network_activity(self):
        """A comm-heavy neighbor job must depress this job's net telemetry
        compared to running alone on the same switch."""
        def fresh(topology):
            return ClusterSim(
                catalog=build_catalog(n_cores=1, n_nics=1, n_extra_cray=4),
                node_profile=VOLTA_NODE,
                n_nodes=4,
                missing_rate=0.0,
                topology=topology,
            )
        topo = SwitchTopology(n_nodes=4, nodes_per_switch=4, switch_bandwidth=0.8)
        quiet_job = Job(app=VOLTA_APPS["CG"], node_count=2, duration=256)
        noisy_neighbor = Job(app=VOLTA_APPS["MiniGhost"], node_count=2, duration=256)

        alone = fresh(topo).run_concurrent([quiet_job], rng=3)
        crowded = fresh(topo).run_concurrent([quiet_job, noisy_neighbor], rng=3)

        name = "procnetdev.ipogif0.rx_packets"
        i = alone[0].metric_names.index(name)
        rate_alone = np.diff(alone[0].data[:, i]).mean()
        rate_crowded = np.diff(crowded[0].data[:, i]).mean()
        assert rate_crowded < rate_alone

    def test_anomaly_still_on_first_node(self, sim):
        from repro.anomalies import get_anomaly

        jobs = [
            Job(
                app=VOLTA_APPS["CG"], node_count=3, duration=64,
                anomaly=get_anomaly("membw"), intensity=0.5,
            ),
            Job(app=VOLTA_APPS["BT"], node_count=3, duration=64),
        ]
        records = sim.run_concurrent(jobs, rng=1)
        labels = [r.label for r in records]
        assert labels[0] == "membw"
        assert labels.count("healthy") == 5
