"""Shared fixtures: small deterministic datasets reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import build_dataset, volta_config
from repro.datasets.generate import SystemConfig
from repro.apps.volta_apps import VOLTA_APPS
from repro.telemetry.catalog import build_catalog
from repro.telemetry.node import VOLTA_NODE


@pytest.fixture(scope="session")
def blobs():
    """A well-separated 4-class Gaussian-blob problem (n=240, m=12)."""
    rng = np.random.default_rng(42)
    centers = rng.normal(scale=4.0, size=(4, 12))
    X = np.vstack([c + rng.normal(scale=0.8, size=(60, 12)) for c in centers])
    y = np.repeat(np.arange(4), 60)
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


@pytest.fixture(scope="session")
def tiny_config() -> SystemConfig:
    """A 3-app miniature campaign for fast end-to-end tests."""
    apps = {k: VOLTA_APPS[k] for k in ("CG", "BT", "Kripke")}
    return SystemConfig(
        name="tiny",
        apps=apps,
        catalog=build_catalog(n_cores=2, n_nics=1, n_extra_cray=4),
        node=VOLTA_NODE,
        intensities=(0.2, 1.0),
        duration=96,
        n_healthy_per_app_input=4,
        n_anomalous_per_app_anomaly=3,
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_config):
    """Featurized miniature corpus (MVTS) plus its extractor."""
    return build_dataset(tiny_config, method="mvts", rng=7)


@pytest.fixture(scope="session")
def volta_mini():
    """A slightly larger Volta-shaped corpus for split/AL tests."""
    cfg = volta_config(
        scale=0.04,
        n_healthy_per_app_input=5,
        n_anomalous_per_app_anomaly=5,
        duration=120,
    )
    ds, ext = build_dataset(cfg, method="mvts", rng=3)
    return cfg, ds, ext
