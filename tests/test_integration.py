"""Cross-module integration tests: the paper's pipeline end to end.

These tie the substrates together the way the benchmarks do, at miniature
scale, so a regression anywhere in the chain (telemetry → features →
splits → models → AL loop → metrics) surfaces here before the expensive
bench suite runs.
"""

import numpy as np
import pytest

from repro.active import (
    RandomSelector,
    queries_to_reach,
    run_active_learning,
)
from repro.datasets import (
    make_app_holdout_split,
    make_input_holdout_split,
    make_standard_split,
    prepare,
)
from repro.experiments import run_methods
from repro.mlcore import (
    RandomForestClassifier,
    anomaly_miss_rate,
    f1_score,
    false_alarm_rate,
)


@pytest.fixture(scope="module")
def prep(volta_mini):
    _, ds, _ = volta_mini
    return prepare(make_standard_split(ds, rng=0), k_features=120)


def _rf(n=10, seed=0):
    return RandomForestClassifier(n_estimators=n, max_depth=8, random_state=seed)


class TestFullPipeline:
    def test_full_train_beats_chance_clearly(self, prep):
        X = np.vstack([prep.X_seed, prep.X_pool])
        y = np.concatenate([prep.y_seed, prep.y_pool])
        model = _rf(20).fit(X, y)
        pred = model.predict(prep.X_test)
        assert f1_score(prep.y_test, pred) > 0.5
        assert false_alarm_rate(prep.y_test, pred) < 0.5

    def test_al_loop_runs_and_improves_far(self, prep):
        res = run_active_learning(
            _rf(), "uncertainty",
            prep.X_seed, prep.y_seed,
            prep.X_pool, prep.y_pool,
            prep.X_test, prep.y_test,
            n_queries=25, random_state=0,
        )
        assert res.far[-1] <= res.far[0]
        assert res.oracle.n_queries == 25

    def test_al_final_f1_not_below_start_much(self, prep):
        res = run_active_learning(
            _rf(), "margin",
            prep.X_seed, prep.y_seed,
            prep.X_pool, prep.y_pool,
            prep.X_test, prep.y_test,
            n_queries=25, random_state=0,
        )
        assert res.final_f1 > res.initial_f1 - 0.1

    def test_healthy_dominates_early_queries(self, prep):
        """The paper's Fig. 4 mechanism at miniature scale."""
        res = run_active_learning(
            _rf(), "uncertainty",
            prep.X_seed, prep.y_seed,
            prep.X_pool, prep.y_pool,
            prep.X_test, prep.y_test,
            n_queries=20, random_state=0,
        )
        labels = [str(v) for v in res.queried_labels]
        assert labels.count("healthy") >= len(labels) * 0.4

    def test_strategy_and_random_share_seed_model(self, prep):
        """Both methods must start from the same initial score."""
        kwargs = dict(n_queries=5, random_state=0)
        a = run_active_learning(
            _rf(), "uncertainty", prep.X_seed, prep.y_seed,
            prep.X_pool, prep.y_pool, prep.X_test, prep.y_test, **kwargs,
        )
        b = run_active_learning(
            _rf(), RandomSelector(), prep.X_seed, prep.y_seed,
            prep.X_pool, prep.y_pool, prep.X_test, prep.y_test, **kwargs,
        )
        assert a.initial_f1 == b.initial_f1


class TestHoldoutScenarios:
    def test_unseen_inputs_start_worse_than_standard(self, volta_mini):
        _, ds, _ = volta_mini
        standard = prepare(make_standard_split(ds, rng=0), k_features=120)
        holdout = prepare(make_input_holdout_split(ds, 0, rng=0), k_features=120)

        def start_f1(p):
            # the holdout/standard gap is small on this mini corpus, so
            # average a few forest seeds: one stream's luck (~±0.05 F1 at
            # this size) must not decide the comparison
            scores = [
                f1_score(p.y_test, _rf(30, seed).fit(p.X_seed, p.y_seed).predict(p.X_test))
                for seed in range(3)
            ]
            return float(np.mean(scores))

        assert start_f1(holdout) < start_f1(standard) + 0.05

    def test_unseen_apps_hurt(self, volta_mini):
        _, ds, _ = volta_mini
        apps = sorted(set(ds.apps))
        holdout = prepare(
            make_app_holdout_split(ds, apps[:2], rng=0), k_features=120
        )
        X = np.vstack([holdout.X_seed, holdout.X_pool])
        y = np.concatenate([holdout.y_seed, holdout.y_pool])
        model = _rf(20).fit(X, y)
        f1_unseen = f1_score(holdout.y_test, model.predict(holdout.X_test))

        standard = prepare(make_standard_split(ds, rng=0), k_features=120)
        Xs = np.vstack([standard.X_seed, standard.X_pool])
        ys = np.concatenate([standard.y_seed, standard.y_pool])
        f1_std = f1_score(
            standard.y_test, _rf(20).fit(Xs, ys).predict(standard.X_test)
        )
        assert f1_unseen < f1_std

    def test_miss_rate_defined_on_holdout(self, volta_mini):
        _, ds, _ = volta_mini
        holdout = prepare(make_input_holdout_split(ds, 0, rng=0), k_features=120)
        model = _rf().fit(holdout.X_seed, holdout.y_seed)
        pred = model.predict(holdout.X_test)
        amr = anomaly_miss_rate(holdout.y_test, pred)
        assert 0.0 <= amr <= 1.0


class TestRunnerIntegration:
    def test_run_methods_full_grid_tiny(self, volta_mini):
        _, ds, _ = volta_mini
        preps = [prepare(make_standard_split(ds, rng=r), k_features=80) for r in range(2)]
        result = run_methods(
            preps,
            methods=("uncertainty", "random"),
            n_queries=5,
            model_params={"n_estimators": 5},
        )
        stats = result.stats("uncertainty")
        assert stats.n_splits == 2
        assert len(stats.f1_mean) == 6
        assert result.queries_to_reach("uncertainty", 0.0) == 0
