"""Tests for the Fig. 2 split and the robustness holdout splits."""

import numpy as np
import pytest

from repro.datasets.splits import (
    make_app_holdout_split,
    make_input_holdout_split,
    make_standard_split,
    prepare,
)

HEALTHY = "healthy"


@pytest.fixture(scope="module")
def corpus(volta_mini):
    _, ds, _ = volta_mini
    return ds


class TestStandardSplit:
    def test_seed_is_one_per_app_class_pair(self, corpus):
        bundle = make_standard_split(corpus, rng=0)
        seed = bundle.seed
        assert HEALTHY in seed.labels  # default includes healthy seeds
        pairs = list(zip(seed.apps, seed.labels))
        assert len(pairs) == len(set(pairs))
        n_apps = len(np.unique(corpus.apps))
        n_classes = len(np.unique(corpus.labels))
        assert len(seed) == n_apps * n_classes

    def test_paper_literal_seed_excludes_healthy(self, corpus):
        bundle = make_standard_split(corpus, rng=0, seed_healthy=False)
        assert HEALTHY not in bundle.seed.labels
        n_apps = len(np.unique(corpus.apps))
        n_anoms = len(np.unique(corpus.labels)) - 1
        assert len(bundle.seed) == n_apps * n_anoms

    def test_pool_anomaly_ratio(self, corpus):
        bundle = make_standard_split(corpus, rng=0, pool_anomaly_ratio=0.10)
        ratio = np.mean(bundle.pool.labels != HEALTHY)
        assert ratio == pytest.approx(0.10, abs=0.03)

    def test_no_overlap_between_parts(self, corpus):
        bundle = make_standard_split(corpus, rng=1)
        # row identity via feature vectors (they are unique per run)
        def keys(ds):
            return {hash(row.tobytes()) for row in ds.X}
        s, p, t = keys(bundle.seed), keys(bundle.pool), keys(bundle.test)
        assert not (s & p) and not (s & t) and not (p & t)

    def test_test_has_all_classes(self, corpus):
        bundle = make_standard_split(corpus, rng=2)
        assert set(bundle.test.labels) == set(corpus.labels)

    def test_pool_keeps_every_anomaly_type(self, corpus):
        bundle = make_standard_split(corpus, rng=3)
        anom_types = set(bundle.pool.labels) - {HEALTHY}
        assert anom_types == set(corpus.labels) - {HEALTHY}

    def test_train_union(self, corpus):
        bundle = make_standard_split(corpus, rng=0)
        assert len(bundle.train) == len(bundle.seed) + len(bundle.pool)

    def test_invalid_test_frac(self, corpus):
        with pytest.raises(ValueError, match="test_frac"):
            make_standard_split(corpus, test_frac=0.0)

    def test_different_seeds_different_splits(self, corpus):
        a = make_standard_split(corpus, rng=10)
        b = make_standard_split(corpus, rng=11)
        assert not np.array_equal(a.test.X, b.test.X)


class TestAppHoldout:
    def test_train_and_test_apps_disjoint(self, corpus):
        train_apps = ["CG", "BT"]
        bundle = make_app_holdout_split(corpus, train_apps, rng=0)
        assert set(bundle.seed.apps) <= set(train_apps)
        assert set(bundle.pool.apps) <= set(train_apps)
        assert not (set(bundle.test.apps) & set(train_apps))

    def test_unknown_app_rejected(self, corpus):
        with pytest.raises(ValueError, match="not in dataset"):
            make_app_holdout_split(corpus, ["HAL9000"], rng=0)

    def test_all_apps_in_train_rejected(self, corpus):
        every_app = list(np.unique(corpus.apps))
        with pytest.raises(ValueError, match="held-out"):
            make_app_holdout_split(corpus, every_app, rng=0)

    def test_seed_covers_train_app_class_grid(self, corpus):
        bundle = make_app_holdout_split(corpus, ["CG", "BT"], rng=0)
        pairs = set(zip(bundle.seed.apps, bundle.seed.labels))
        classes = set(corpus.labels)
        assert pairs == {(a, c) for a in ("CG", "BT") for c in classes}


class TestInputHoldout:
    def test_decks_are_disjoint(self, corpus):
        bundle = make_input_holdout_split(corpus, train_input=0, rng=0)
        assert set(bundle.seed.input_decks) == {0}
        assert set(bundle.pool.input_decks) == {0}
        assert 0 not in set(bundle.test.input_decks)

    def test_missing_deck_rejected(self, corpus):
        with pytest.raises(ValueError, match="input deck"):
            make_input_holdout_split(corpus, train_input=99, rng=0)


class TestPrepare:
    def test_shapes_and_k(self, corpus):
        bundle = make_standard_split(corpus, rng=0)
        prep = prepare(bundle, k_features=50)
        assert prep.X_seed.shape[1] == 50
        assert prep.X_pool.shape[1] == 50
        assert prep.X_test.shape[1] == 50
        assert len(prep.pool_apps) == len(prep.y_pool)

    def test_train_features_in_unit_range(self, corpus):
        bundle = make_standard_split(corpus, rng=0)
        prep = prepare(bundle, k_features=50)
        for X in (prep.X_seed, prep.X_pool):
            assert X.min() >= -1e-9 and X.max() <= 1 + 1e-9

    def test_test_clipped_into_range(self, corpus):
        bundle = make_standard_split(corpus, rng=0)
        prep = prepare(bundle, k_features=50)
        assert prep.X_test.min() >= 0.0 and prep.X_test.max() <= 1.0

    def test_selected_features_are_class_informative(self, corpus):
        """The chi2 selection must keep features that separate classes better
        than a random subset would (sanity of the whole preprocessing)."""
        from repro.mlcore import RandomForestClassifier, f1_score

        bundle = make_standard_split(corpus, rng=0)
        prep = prepare(bundle, k_features=100)
        rf = RandomForestClassifier(n_estimators=20, random_state=0)
        rf.fit(prep.X_pool, prep.y_pool)
        f1 = f1_score(prep.y_test, rf.predict(prep.X_test))
        assert f1 > 0.3
