"""Tests for campaign generation and the Volta/Eclipse configurations."""

import numpy as np
import pytest

from repro.datasets.eclipse import eclipse_config
from repro.datasets.generate import SystemConfig, build_dataset, generate_runs
from repro.datasets.volta import volta_config


class TestSystemConfig:
    def test_classes_include_healthy_and_all_anomalies(self, tiny_config):
        assert tiny_config.classes[0] == "healthy"
        assert set(tiny_config.classes[1:]) == set(tiny_config.anomaly_names)

    def test_validation(self, tiny_config):
        with pytest.raises(ValueError, match="application"):
            SystemConfig(
                name="x", apps={}, catalog=tiny_config.catalog, node=tiny_config.node
            )
        with pytest.raises(ValueError, match="duration"):
            SystemConfig(
                name="x",
                apps=tiny_config.apps,
                catalog=tiny_config.catalog,
                node=tiny_config.node,
                duration=10,
            )


class TestGenerateRuns:
    def test_run_counts(self, tiny_config):
        runs = generate_runs(tiny_config, rng=0)
        n_apps = len(tiny_config.apps)
        expected_healthy = n_apps * 3 * tiny_config.n_healthy_per_app_input
        expected_anom = (
            n_apps
            * len(tiny_config.anomaly_names)
            * tiny_config.n_anomalous_per_app_anomaly
        )
        assert len(runs) == expected_healthy + expected_anom
        labels = np.array([r.label for r in runs])
        assert np.sum(labels == "healthy") == expected_healthy

    def test_every_condition_cell_covered(self, tiny_config):
        runs = generate_runs(tiny_config, rng=0)
        cells = {(r.app, r.label) for r in runs}
        for app in tiny_config.apps:
            assert (app, "healthy") in cells
            for anomaly in tiny_config.anomaly_names:
                assert (app, anomaly) in cells

    def test_intensities_cycle_through_grid(self, tiny_config):
        runs = generate_runs(tiny_config, rng=0)
        intensities = {r.intensity for r in runs if r.label != "healthy"}
        assert intensities == set(tiny_config.intensities)

    def test_reproducible(self, tiny_config):
        a = generate_runs(tiny_config, rng=5)
        b = generate_runs(tiny_config, rng=5)
        assert np.array_equal(a[0].data, b[0].data, equal_nan=True)
        assert [r.label for r in a] == [r.label for r in b]


class TestBuildDataset:
    def test_featurized_output(self, tiny_dataset):
        ds, extractor = tiny_dataset
        assert len(ds) > 0
        assert not np.isnan(ds.X).any()
        assert extractor.keep_mask_ is not None


class TestNamedConfigs:
    def test_volta_shape(self):
        cfg = volta_config(scale=0.05)
        assert len(cfg.apps) == 11
        assert cfg.node_counts == (4,)
        assert len(cfg.intensities) == 6
        assert cfg.name == "volta"

    def test_eclipse_shape(self):
        cfg = eclipse_config(scale=0.05)
        assert len(cfg.apps) == 6
        assert cfg.node_counts == (4, 8, 16)
        assert len(cfg.intensities) == 3
        assert cfg.name == "eclipse"

    def test_full_scale_metric_counts(self):
        assert len(volta_config(scale=1.0).catalog) == 721
        assert len(eclipse_config(scale=1.0).catalog) == 806

    def test_duration_scales(self):
        assert volta_config(scale=1.0).duration == 750
        assert volta_config(scale=0.05).duration >= 120
        assert eclipse_config(scale=1.0).duration == 1950

    def test_duration_override(self):
        assert volta_config(scale=0.05, duration=222).duration == 222

    def test_eclipse_harder_than_volta(self):
        """Eclipse apps carry more run variation (the paper's complexity gap)."""
        volta_var = np.mean([a.run_variation for a in volta_config(0.05).apps.values()])
        eclipse_var = np.mean([a.run_variation for a in eclipse_config(0.05).apps.values()])
        assert eclipse_var > volta_var
