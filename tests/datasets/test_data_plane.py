"""Determinism tests for the parallel data plane (ISSUE PR 5).

The seed-streamed generator must be bit-identical at every worker count,
and the legacy serial path (``n_jobs=None``) must keep producing the
bytes it always has.
"""

import numpy as np
import pytest

from repro.apps.volta_apps import VOLTA_APPS
from repro.datasets.generate import (
    SystemConfig,
    build_dataset,
    generate_corpus,
    generate_runs,
)
from repro.telemetry.catalog import build_catalog
from repro.telemetry.node import VOLTA_NODE


@pytest.fixture(scope="module")
def micro_config() -> SystemConfig:
    """Smallest campaign that still exercises every grid dimension."""
    apps = {k: VOLTA_APPS[k] for k in ("CG", "BT")}
    return SystemConfig(
        name="micro",
        apps=apps,
        catalog=build_catalog(n_cores=1, n_nics=1, n_extra_cray=2),
        node=VOLTA_NODE,
        intensities=(0.2, 1.0),
        duration=64,
        n_healthy_per_app_input=2,
        n_anomalous_per_app_anomaly=2,
    )


def _assert_corpora_equal(a, b):
    assert np.array_equal(a.buffer, b.buffer, equal_nan=True)
    assert np.array_equal(a.offsets, b.offsets)
    for name in ("apps", "input_decks", "node_counts", "node_ids",
                 "anomalies", "intensities"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


class TestSeedStreamDeterminism:
    def test_bit_identical_across_worker_counts(self, micro_config):
        serial = generate_corpus(micro_config, rng=0, n_jobs=1)
        for n_jobs in (2, 4):
            parallel = generate_corpus(micro_config, rng=0, n_jobs=n_jobs)
            _assert_corpora_equal(serial, parallel)

    def test_different_seeds_differ(self, micro_config):
        a = generate_corpus(micro_config, rng=0, n_jobs=1)
        b = generate_corpus(micro_config, rng=1, n_jobs=1)
        assert not np.array_equal(a.buffer, b.buffer, equal_nan=True)

    def test_streamed_records_match_corpus(self, micro_config):
        corpus = generate_corpus(micro_config, rng=3, n_jobs=1)
        records = generate_runs(micro_config, rng=3, n_jobs=1)
        assert len(records) == len(corpus)
        for i, r in enumerate(records):
            assert np.array_equal(r.data, corpus.run_data(i), equal_nan=True)
            assert r.label == corpus.labels[i]

    def test_grid_matches_legacy_enumeration(self, micro_config):
        """Streamed corpora keep the canonical (legacy) run ordering."""
        legacy = generate_runs(micro_config, rng=0)
        streamed = generate_corpus(micro_config, rng=0, n_jobs=1)
        assert [r.app for r in legacy] == list(streamed.apps)
        assert [r.label for r in legacy] == list(streamed.labels)
        assert [r.input_deck for r in legacy] == list(streamed.input_decks)
        assert [r.intensity for r in legacy] == list(streamed.intensities)

    def test_legacy_default_unchanged(self, micro_config):
        """``n_jobs=None`` keeps the historical shared-RNG stream."""
        a = generate_runs(micro_config, rng=11)
        b = generate_runs(micro_config, rng=11)
        assert all(
            np.array_equal(x.data, y.data, equal_nan=True)
            for x, y in zip(a, b)
        )


class TestBuildDatasetDeterminism:
    @pytest.mark.parametrize("method", ["mvts", "tsfresh"])
    def test_bit_identical_across_worker_counts(self, micro_config, method):
        ref, _ = build_dataset(micro_config, method=method, rng=0, n_jobs=1)
        for n_jobs in (2, 4):
            ds, _ = build_dataset(micro_config, method=method, rng=0, n_jobs=n_jobs)
            assert np.array_equal(ref.X, ds.X)  # bit-identical, no tolerance
            assert np.array_equal(ref.labels, ds.labels)
            assert np.array_equal(ref.apps, ds.apps)
            assert np.array_equal(ref.intensities, ds.intensities)
            assert np.array_equal(ref.node_counts, ds.node_counts)
            assert ref.feature_names == ds.feature_names

    def test_legacy_path_still_default(self, micro_config):
        """No ``n_jobs`` argument → the historical serial pipeline."""
        a, _ = build_dataset(micro_config, method="mvts", rng=5)
        b, _ = build_dataset(micro_config, method="mvts", rng=5)
        assert np.array_equal(a.X, b.X)


class TestProcessBackendDeterminism:
    """The zero-copy shared-memory transport must not move a single bit.

    ``backend="auto"`` may resolve to threads on a one-core box, so these
    tests force the process backend to exercise the shm attach path at
    every worker count — and verify no ``/dev/shm`` segment survives.
    """

    def test_corpus_bit_identical_forced_process(self, micro_config):
        from repro.parallel import active_segments

        before = set(active_segments())
        serial = generate_corpus(micro_config, rng=0, n_jobs=1)
        for n_jobs in (2, 4):
            parallel = generate_corpus(
                micro_config, rng=0, n_jobs=n_jobs, backend="process"
            )
            _assert_corpora_equal(serial, parallel)
        assert set(active_segments()) == before

    def test_build_dataset_bit_identical_forced_process(self, micro_config):
        from repro.parallel import active_segments

        before = set(active_segments())
        ref, _ = build_dataset(micro_config, method="mvts", rng=0, n_jobs=1)
        for n_jobs in (2, 4):
            ds, _ = build_dataset(
                micro_config, method="mvts", rng=0, n_jobs=n_jobs,
                backend="process",
            )
            assert np.array_equal(ref.X, ds.X)
            assert np.array_equal(ref.labels, ds.labels)
            assert ref.feature_names == ds.feature_names
        assert set(active_segments()) == before
