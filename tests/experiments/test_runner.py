"""Tests for the experiment runner and aggregation."""

import numpy as np
import pytest

from repro.active.loop import ALResult
from repro.active.oracle import Oracle
from repro.datasets.splits import PreparedSplit, make_standard_split, prepare
from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentResult,
    aggregate,
    run_methods,
)


def _fake_result(f1_curve, start_n=10):
    n = len(f1_curve)
    return ALResult(
        n_labeled=np.arange(start_n, start_n + n),
        f1=np.asarray(f1_curve, dtype=float),
        far=np.linspace(0.5, 0.0, n),
        amr=np.linspace(0.1, 0.2, n),
        oracle=Oracle(y_true=np.array(["healthy"])),
    )


class TestAggregate:
    def test_mean_curves(self):
        stats = aggregate([_fake_result([0.5, 0.7]), _fake_result([0.7, 0.9])])
        assert np.allclose(stats.f1_mean, [0.6, 0.8])
        assert stats.n_splits == 2

    def test_truncates_to_shortest(self):
        stats = aggregate([_fake_result([0.5, 0.6, 0.7]), _fake_result([0.5, 0.6])])
        assert len(stats.f1_mean) == 2

    def test_single_split_has_zero_ci(self):
        stats = aggregate([_fake_result([0.5, 0.6])])
        assert np.all(stats.f1_ci == 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no results"):
            aggregate([])

    def test_f1_at_checkpoint(self):
        stats = aggregate([_fake_result([0.5, 0.6, 0.7], start_n=10)])
        assert stats.f1_at(0) == 0.5
        assert stats.f1_at(2) == 0.7


class TestExperimentResult:
    def test_queries_to_reach_on_mean_curve(self):
        result = ExperimentResult(
            runs={"uncertainty": [_fake_result([0.5, 0.8, 0.9])]}
        )
        assert result.queries_to_reach("uncertainty", 0.8) == 1
        assert result.queries_to_reach("uncertainty", 0.99) is None

    def test_per_split_counts(self):
        result = ExperimentResult(
            runs={"m": [_fake_result([0.5, 0.9]), _fake_result([0.9, 0.9])]}
        )
        assert result.per_split_queries_to_reach("m", 0.9) == [1, 0]


class TestRunMethods:
    @pytest.fixture(scope="class")
    def prep(self, volta_mini) -> PreparedSplit:
        _, ds, _ = volta_mini
        return prepare(make_standard_split(ds, rng=0), k_features=80)

    def test_all_methods_execute(self, prep):
        result = run_methods(
            [prep],
            methods=ALL_METHODS,
            n_queries=3,
            model_params={"n_estimators": 4},
            proctor_params={"ae_epochs": 2, "code_size": 4},
        )
        assert set(result.runs) == set(ALL_METHODS)
        for runs in result.runs.values():
            assert len(runs) == 1
            assert runs[0].oracle.n_queries == 3

    def test_unknown_method(self, prep):
        with pytest.raises(ValueError, match="unknown methods"):
            run_methods([prep], methods=("oracle",))

    def test_reproducible(self, prep):
        kwargs = dict(
            methods=("uncertainty",), n_queries=4,
            model_params={"n_estimators": 4}, base_seed=3,
        )
        a = run_methods([prep], **kwargs)
        b = run_methods([prep], **kwargs)
        assert np.array_equal(
            a.runs["uncertainty"][0].f1, b.runs["uncertainty"][0].f1
        )

    def test_multiple_splits_collected_in_order(self, volta_mini):
        _, ds, _ = volta_mini
        preps = [
            prepare(make_standard_split(ds, rng=r), k_features=80)
            for r in range(2)
        ]
        result = run_methods(
            preps, methods=("random",), n_queries=2,
            model_params={"n_estimators": 4},
        )
        assert len(result.runs["random"]) == 2
