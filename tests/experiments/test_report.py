"""Tests for the plain-text reporting helpers."""

import numpy as np
import pytest

from repro.experiments.report import (
    curve_table,
    distribution_table,
    format_table,
    sparkline,
    table5_row,
)
from repro.experiments.runner import CurveStats, ExperimentResult
from repro.active.loop import ALResult
from repro.active.oracle import Oracle


def _stats(f1, start_n=10):
    n = len(f1)
    zeros = np.zeros(n)
    return CurveStats(
        n_labeled=np.arange(start_n, start_n + n),
        f1_mean=np.asarray(f1, dtype=float),
        f1_ci=zeros,
        far_mean=np.linspace(1, 0, n),
        far_ci=zeros,
        amr_mean=zeros,
        amr_ci=zeros,
        n_splits=1,
    )


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_clipping(self):
        assert sparkline([-5, 5]) == "▁█"

    def test_bad_range(self):
        with pytest.raises(ValueError, match="hi"):
            sparkline([0.5], lo=1, hi=0)


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "----" in lines[1]
        assert len(lines) == 4


class TestCurveTable:
    def test_contains_methods_and_checkpoints(self):
        text = curve_table(
            {"uncertainty": _stats([0.5, 0.6, 0.7])}, checkpoints=(0, 2)
        )
        assert "uncertainty" in text
        assert "+0" in text and "+2" in text
        assert "0.500" in text and "0.700" in text

    def test_out_of_budget_checkpoint_dashes(self):
        text = curve_table({"m": _stats([0.5, 0.6])}, checkpoints=(0, 50))
        assert "-" in text.splitlines()[-1]

    def test_far_metric(self):
        text = curve_table({"m": _stats([0.5, 0.6])}, checkpoints=(0,), metric="far")
        assert "1.000" in text


class TestTable5Row:
    def _result(self, f1):
        return ExperimentResult(
            runs={
                "uncertainty": [
                    ALResult(
                        n_labeled=np.arange(10, 10 + len(f1)),
                        f1=np.asarray(f1, dtype=float),
                        far=np.zeros(len(f1)),
                        amr=np.zeros(len(f1)),
                        oracle=Oracle(y_true=np.array(["healthy"])),
                    )
                ]
            }
        )

    def test_already_passed(self):
        row = table5_row(
            "Volta", "TSFRESH", "uncertainty",
            self._result([0.9, 0.96]), 0.95, 500, 0.99, 1000,
            targets=(0.85,),
        )
        assert "Already Passed" in row

    def test_counts_and_not_reached(self):
        row = table5_row(
            "Volta", "TSFRESH", "uncertainty",
            self._result([0.5, 0.86, 0.91]), 0.95, 500, 0.99, 1000,
        )
        assert "1 samples" in row  # 0.85 at +1
        assert "2 samples" in row  # 0.90 at +2
        assert "not reached" in row  # 0.95 never


class TestDistributionTable:
    def test_counts_render(self):
        text = distribution_table(
            ["healthy", "healthy", "dial"], ["CG", "BT", "CG"], first_n=3
        )
        assert "healthy" in text and "## 2" in text
        assert "CG" in text
