"""Tests for the content-addressed on-disk dataset cache."""

import json

import numpy as np
import pytest

from repro.experiments.cache import (
    cached_selection,
    config_fingerprint,
    dataset_fingerprint,
    get_or_build,
    load_dataset,
    save_dataset,
)
from repro.features.pipeline import FeatureDataset
from repro.mlcore.feature_selection import SelectKBest


def _dataset(n=6):
    rng = np.random.default_rng(0)
    return FeatureDataset(
        X=rng.normal(size=(n, 4)),
        labels=np.array(["healthy", "membw"] * (n // 2)),
        apps=np.array(["CG"] * n),
        input_decks=np.zeros(n, dtype=int),
        intensities=np.zeros(n),
        node_counts=np.full(n, 4),
        feature_names=["f0", "f1", "f2", "f3"],
    )


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        ds = _dataset()
        path = save_dataset(ds, tmp_path / "d.npz")
        back = load_dataset(path)
        assert np.array_equal(back.X, ds.X)
        assert list(back.labels) == list(ds.labels)
        assert back.feature_names == ds.feature_names

    def test_creates_parent_dirs(self, tmp_path):
        save_dataset(_dataset(), tmp_path / "deep" / "dir" / "d.npz")
        assert (tmp_path / "deep" / "dir" / "d.npz").exists()


class TestGetOrBuild:
    def test_builds_once(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return _dataset()

        a = get_or_build("corp", builder, tmp_path)
        b = get_or_build("corp", builder, tmp_path)
        assert len(calls) == 1
        assert np.array_equal(a.X, b.X)

    def test_manifest_written(self, tmp_path):
        get_or_build("corp", _dataset, tmp_path)
        assert (tmp_path / "manifest.json").exists()

    def test_corrupt_entry_rebuilt(self, tmp_path):
        (tmp_path).mkdir(exist_ok=True)
        (tmp_path / "bad.npz").write_bytes(b"not a zip")
        ds = get_or_build("bad", _dataset, tmp_path)
        assert len(ds) == 6


class TestFingerprintValidation:
    def test_fingerprint_recorded_in_manifest(self, tmp_path):
        ds = get_or_build("corp", _dataset, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["corp"]["fingerprint"] == dataset_fingerprint(ds)

    def test_tampered_entry_rebuilt(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return _dataset()

        get_or_build("corp", builder, tmp_path)
        # swap the snapshot for a different corpus behind the manifest's back
        other = _dataset()
        other.X = other.X + 1.0
        save_dataset(other, tmp_path / "corp.npz")
        ds = get_or_build("corp", builder, tmp_path)
        assert len(calls) == 2
        assert np.array_equal(ds.X, _dataset().X)

    def test_legacy_entry_backfilled_without_rebuild(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return _dataset()

        ds = get_or_build("corp", builder, tmp_path)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["corp"]["fingerprint"]  # pre-fingerprint-era entry
        manifest_path.write_text(json.dumps(manifest))
        get_or_build("corp", builder, tmp_path)
        assert len(calls) == 1  # validated lazily, not rebuilt
        manifest = json.loads(manifest_path.read_text())
        assert manifest["corp"]["fingerprint"] == dataset_fingerprint(ds)

    def test_fingerprint_sensitive_to_content(self):
        a = _dataset()
        b = _dataset()
        assert dataset_fingerprint(a) == dataset_fingerprint(b)
        b.X = b.X + 1e-12
        assert dataset_fingerprint(a) != dataset_fingerprint(b)


class TestConfigFingerprint:
    def test_stable_and_discriminating(self, tiny_config):
        base = config_fingerprint(tiny_config, method="mvts", seed=0)
        assert base == config_fingerprint(tiny_config, method="mvts", seed=0)
        assert base != config_fingerprint(tiny_config, method="tsfresh", seed=0)
        assert base != config_fingerprint(tiny_config, method="mvts", seed=1)

    def test_sensitive_to_campaign_fields(self, tiny_config):
        import dataclasses

        other = dataclasses.replace(tiny_config, duration=tiny_config.duration + 32)
        assert config_fingerprint(tiny_config) != config_fingerprint(other)


class TestCachedSelection:
    def _problem(self, n=40, m=10, k=4):
        rng = np.random.default_rng(0)
        X = np.abs(rng.normal(size=(n, m)))
        y = np.array(["a", "b", "c", "d"] * (n // 4))
        return X, y, k

    def test_matches_direct_fit(self, tmp_path):
        X, y, k = self._problem()
        cached = cached_selection(X, y, k, tmp_path)
        direct = SelectKBest(k=k).fit(X, y)
        assert np.array_equal(cached.support_, direct.support_)
        assert np.array_equal(cached.scores_, direct.scores_)
        assert np.array_equal(cached.transform(X), direct.transform(X))

    def test_second_call_hits_cache(self, tmp_path):
        X, y, k = self._problem()
        cached_selection(X, y, k, tmp_path)
        entries = list(tmp_path.glob("chi2-*.npz"))
        assert len(entries) == 1
        again = cached_selection(X, y, k, tmp_path)
        assert list(tmp_path.glob("chi2-*.npz")) == entries
        assert np.array_equal(again.support_, SelectKBest(k=k).fit(X, y).support_)

    def test_key_distinguishes_k_and_data(self, tmp_path):
        X, y, k = self._problem()
        cached_selection(X, y, k, tmp_path)
        cached_selection(X, y, k + 1, tmp_path)
        cached_selection(X + 1.0, y, k, tmp_path)
        assert len(list(tmp_path.glob("chi2-*.npz"))) == 3

    def test_corrupt_entry_refit(self, tmp_path):
        X, y, k = self._problem()
        cached_selection(X, y, k, tmp_path)
        entry = next(tmp_path.glob("chi2-*.npz"))
        entry.write_bytes(b"junk")
        again = cached_selection(X, y, k, tmp_path)
        assert np.array_equal(again.support_, SelectKBest(k=k).fit(X, y).support_)
