"""Tests for the on-disk dataset cache."""

import numpy as np
import pytest

from repro.experiments.cache import get_or_build, load_dataset, save_dataset
from repro.features.pipeline import FeatureDataset


def _dataset(n=6):
    rng = np.random.default_rng(0)
    return FeatureDataset(
        X=rng.normal(size=(n, 4)),
        labels=np.array(["healthy", "membw"] * (n // 2)),
        apps=np.array(["CG"] * n),
        input_decks=np.zeros(n, dtype=int),
        intensities=np.zeros(n),
        node_counts=np.full(n, 4),
        feature_names=["f0", "f1", "f2", "f3"],
    )


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        ds = _dataset()
        path = save_dataset(ds, tmp_path / "d.npz")
        back = load_dataset(path)
        assert np.array_equal(back.X, ds.X)
        assert list(back.labels) == list(ds.labels)
        assert back.feature_names == ds.feature_names

    def test_creates_parent_dirs(self, tmp_path):
        save_dataset(_dataset(), tmp_path / "deep" / "dir" / "d.npz")
        assert (tmp_path / "deep" / "dir" / "d.npz").exists()


class TestGetOrBuild:
    def test_builds_once(self, tmp_path):
        calls = []

        def builder():
            calls.append(1)
            return _dataset()

        a = get_or_build("corp", builder, tmp_path)
        b = get_or_build("corp", builder, tmp_path)
        assert len(calls) == 1
        assert np.array_equal(a.X, b.X)

    def test_manifest_written(self, tmp_path):
        get_or_build("corp", _dataset, tmp_path)
        assert (tmp_path / "manifest.json").exists()

    def test_corrupt_entry_rebuilt(self, tmp_path):
        (tmp_path).mkdir(exist_ok=True)
        (tmp_path / "bad.npz").write_bytes(b"not a zip")
        ds = get_or_build("bad", _dataset, tmp_path)
        assert len(ds) == 6
