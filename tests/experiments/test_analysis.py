"""Tests for the per-class drill-down analysis."""

import numpy as np
import pytest

from repro.active.loop import ALResult
from repro.active.oracle import Oracle
from repro.experiments.analysis import (
    confusion_pairs,
    hardest_anomaly,
    per_class_report,
    queried_class_alignment,
    query_efficiency,
)

Y_TRUE = np.array(["healthy"] * 6 + ["dial"] * 4 + ["membw"] * 4)
# dial is half-missed; membw is perfect
Y_PRED = np.array(
    ["healthy"] * 6 + ["dial", "dial", "healthy", "healthy"] + ["membw"] * 4
)


class TestPerClassReport:
    def test_scores_and_support(self):
        report = per_class_report(Y_TRUE, Y_PRED)
        assert report.f1_of("membw") == 1.0
        assert report.f1_of("dial") < 1.0
        assert report.support[report.labels.index("healthy")] == 6

    def test_ranked_worst_first(self):
        report = per_class_report(Y_TRUE, Y_PRED)
        ranked = report.ranked()
        assert ranked[0][0] == "dial"
        assert ranked[-1][1] >= ranked[0][1]

    def test_unknown_label(self):
        report = per_class_report(Y_TRUE, Y_PRED)
        with pytest.raises(KeyError, match="cpuoccupy"):
            report.f1_of("cpuoccupy")


class TestHardestAnomaly:
    def test_identifies_lowest_f1_anomaly(self):
        assert hardest_anomaly(Y_TRUE, Y_PRED) == "dial"

    def test_healthy_excluded(self):
        y_true = np.array(["healthy", "healthy", "membw"])
        y_pred = np.array(["membw", "membw", "membw"])  # healthy F1 = 0
        assert hardest_anomaly(y_true, y_pred) == "membw"

    def test_no_anomalies_raises(self):
        y = np.array(["healthy", "healthy"])
        with pytest.raises(ValueError, match="no anomaly"):
            hardest_anomaly(y, y)


class TestConfusionPairs:
    def test_top_error_pair(self):
        pairs = confusion_pairs(Y_TRUE, Y_PRED)
        assert pairs[0] == ("dial", "healthy", 2)

    def test_perfect_prediction_has_no_pairs(self):
        assert confusion_pairs(Y_TRUE, Y_TRUE) == []

    def test_top_k_limits(self):
        y_true = np.array(["a", "b", "c", "d"])
        y_pred = np.array(["b", "c", "d", "a"])
        assert len(confusion_pairs(y_true, y_pred, top_k=2)) == 2


def _result(f1, labels):
    return ALResult(
        n_labeled=np.arange(10, 10 + len(f1)),
        f1=np.asarray(f1, dtype=float),
        far=np.zeros(len(f1)),
        amr=np.zeros(len(f1)),
        oracle=Oracle(y_true=np.array(["healthy"])),
        queried_labels=list(labels),
    )


class TestQueryEfficiency:
    def test_targets_resolved(self):
        res = _result([0.5, 0.75, 0.85], [])
        eff = query_efficiency(res, targets=(0.7, 0.8, 0.99))
        assert eff[0.7] == 1 and eff[0.8] == 2 and eff[0.99] is None


class TestQueriedAlignment:
    def test_shares_sum_to_one(self):
        res = _result([0.5], ["dial", "dial", "healthy", "membw"])
        shares = queried_class_alignment(res, None, None)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["dial"] == 0.5

    def test_empty_queries(self):
        res = _result([0.5], [])
        assert queried_class_alignment(res, None, None) == {}


class TestSubsystemSignal:
    NAMES = [
        "meminfo.MemFree::mean",
        "meminfo.Active::linear_slope",
        "vmstat.pgfault::std",
        "cray.WB_hits::half_diff_mean",
        "cray.stalls::mean",
    ]

    def test_counts_by_subsystem(self):
        from repro.experiments.analysis import subsystem_signal

        counts = subsystem_signal(self.NAMES)
        assert counts == {"meminfo": 2, "vmstat": 1, "cray": 2}

    def test_bad_name_rejected(self):
        from repro.experiments.analysis import subsystem_signal

        with pytest.raises(ValueError, match="pipeline feature"):
            subsystem_signal(["plainname"])

    def test_feature_family_ranking(self):
        from repro.experiments.analysis import feature_family_signal

        fams = feature_family_signal(self.NAMES)
        assert fams[0] == ("mean", 2)
        assert ("std", 1) in fams

    def test_top_k(self):
        from repro.experiments.analysis import feature_family_signal

        assert len(feature_family_signal(self.NAMES, top_k=2)) == 2

    def test_on_real_selector(self, volta_mini):
        """End to end: selected features map back to subsystems."""
        from repro.datasets import make_standard_split, prepare
        from repro.experiments.analysis import subsystem_signal

        _, ds, _ = volta_mini
        bundle = make_standard_split(ds, rng=0)
        prep = prepare(bundle, k_features=60)
        kept = [ds.feature_names[i] for i in prep.selector.get_support()]
        counts = subsystem_signal(kept)
        assert sum(counts.values()) == 60
        assert len(counts) >= 2  # signal never lives in one subsystem only
