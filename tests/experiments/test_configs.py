"""Tests for the canonical bench configurations."""

import pytest

from repro.experiments.configs import (
    K_FEATURES,
    N_QUERIES,
    N_SPLITS,
    RF_PARAMS,
    bench_eclipse_config,
    bench_volta_config,
)


class TestBenchConfigs:
    def test_volta_shape(self):
        cfg = bench_volta_config()
        assert cfg.name == "volta"
        assert len(cfg.apps) == 11
        assert cfg.duration >= 120

    def test_eclipse_shape(self):
        cfg = bench_eclipse_config()
        assert cfg.name == "eclipse"
        assert len(cfg.apps) == 6
        assert cfg.node_counts == (4, 8, 16)

    def test_shared_run_volume(self):
        """Both systems collect comparable per-cell volumes."""
        v = bench_volta_config()
        e = bench_eclipse_config()
        assert v.n_healthy_per_app_input == e.n_healthy_per_app_input
        assert v.n_anomalous_per_app_anomaly == e.n_anomalous_per_app_anomaly

    def test_knobs_are_sane(self):
        assert N_SPLITS >= 2
        assert N_QUERIES >= 50
        assert K_FEATURES >= 100
        assert RF_PARAMS["criterion"] in ("gini", "entropy")

    def test_unknown_system_rejected(self):
        from repro.experiments.configs import bench_dataset

        with pytest.raises(ValueError, match="unknown system"):
            bench_dataset("summit")
