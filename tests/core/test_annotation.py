"""Tests for annotator assistance (metric highlighting + session)."""

import numpy as np
import pytest

from repro.active.learner import ActiveLearner
from repro.anomalies import get_anomaly
from repro.apps.volta_apps import VOLTA_APPS
from repro.core.annotation import AnnotationSession, MetricHighlighter
from repro.features.pipeline import FeatureExtractor
from repro.mlcore.forest import RandomForestClassifier
from repro.telemetry.catalog import build_catalog
from repro.telemetry.collector import Collector
from repro.telemetry.node import VOLTA_NODE


@pytest.fixture(scope="module")
def setup():
    catalog = build_catalog(n_cores=2, n_nics=1, n_extra_cray=4)
    collector = Collector(catalog, VOLTA_NODE, missing_rate=0.0)
    rng = np.random.default_rng(0)
    healthy = [
        collector.collect(VOLTA_APPS["CG"], 0, 128, rng=rng) for _ in range(6)
    ]
    anomalous = [
        collector.collect(
            VOLTA_APPS["CG"], 0, 128,
            anomaly=get_anomaly("membw"), intensity=1.0, rng=rng,
        )
        for _ in range(3)
    ]
    return catalog, collector, healthy, anomalous


class TestMetricHighlighter:
    def test_needs_two_healthy_runs(self, setup):
        catalog, _, healthy, _ = setup
        with pytest.raises(ValueError, match="at least 2"):
            MetricHighlighter(catalog).fit(healthy[:1])

    def test_explain_before_fit(self, setup):
        catalog, _, _, anomalous = setup
        with pytest.raises(RuntimeError, match="fit"):
            MetricHighlighter(catalog).explain(anomalous[0])

    def test_top_k_respected(self, setup):
        catalog, _, healthy, anomalous = setup
        hl = MetricHighlighter(catalog, top_k=3).fit(healthy)
        assert len(hl.explain(anomalous[0])) == 3

    def test_ranked_by_severity(self, setup):
        catalog, _, healthy, anomalous = setup
        hl = MetricHighlighter(catalog, top_k=5).fit(healthy)
        devs = hl.explain(anomalous[0])
        scores = [d.score for d in devs]
        assert scores == sorted(scores, reverse=True)

    def test_membw_anomaly_highlights_membw_coupled_metric(self, setup):
        """A membw anomaly must surface a membw-coupled metric in the top-k."""
        catalog, _, healthy, anomalous = setup
        hl = MetricHighlighter(catalog, top_k=8).fit(healthy)
        top = {d.metric for d in hl.explain(anomalous[0])}
        membw_coupled = {"vmstat.numa_hit", "vmstat.numa_miss", "vmstat.numa_local",
                         "cray.WB_misses", "cray.stalls"}
        assert top & membw_coupled

    def test_healthy_runs_score_lower_than_anomalous_on_average(self, setup):
        catalog, collector, healthy, anomalous = setup
        hl = MetricHighlighter(catalog, top_k=6).fit(healthy[:5])
        rng = np.random.default_rng(9)
        fresh_healthy = [
            collector.collect(VOLTA_APPS["CG"], 0, 128, rng=rng) for _ in range(4)
        ]
        h_severity = np.median([hl.severity(r) for r in fresh_healthy])
        a_severity = np.median([hl.severity(r) for r in anomalous])
        assert a_severity > h_severity

    def test_severity_is_capped(self, setup):
        catalog, collector, healthy, anomalous = setup
        hl = MetricHighlighter(catalog, top_k=3).fit(healthy[:5])
        assert hl.severity(anomalous[0]) <= MetricHighlighter.Z_CAP

    def test_invalid_top_k(self, setup):
        catalog, *_ = setup
        with pytest.raises(ValueError, match="top_k"):
            MetricHighlighter(catalog, top_k=0)


class TestAnnotationSession:
    def test_session_queries_and_teaches(self, setup):
        catalog, collector, healthy, anomalous = setup
        extractor = FeatureExtractor(catalog, method="mvts")
        corpus = healthy + anomalous
        ds = extractor.fit_transform(corpus)
        featurize = lambda run: extractor.transform([run]).X[0]

        learner = ActiveLearner(
            RandomForestClassifier(n_estimators=5, random_state=0),
            "uncertainty",
            ds.X[[0, 6]],
            np.array(["healthy", "membw"]),
        )
        hl = MetricHighlighter(catalog, top_k=3).fit(healthy)
        seen_cards = []

        def annotator(card, run):
            seen_cards.append(card)
            return run.label

        session = AnnotationSession(learner, hl, featurize, annotator)
        pool = healthy[1:5] + anomalous[1:]
        answers = session.run(pool, n_queries=3)

        assert len(answers) == 3
        assert learner.n_labeled == 5
        assert len(session.cards) == 3
        assert "model guess" in seen_cards[0]
        assert "deviating metrics" in seen_cards[0]

    def test_budget_bounded_by_pool(self, setup):
        catalog, collector, healthy, anomalous = setup
        extractor = FeatureExtractor(catalog, method="mvts")
        extractor.fit_transform(healthy + anomalous)
        featurize = lambda run: extractor.transform([run]).X[0]
        learner = ActiveLearner(
            RandomForestClassifier(n_estimators=3, random_state=0),
            "uncertainty",
            np.vstack([featurize(healthy[0]), featurize(anomalous[0])]),
            np.array(["healthy", "membw"]),
        )
        hl = MetricHighlighter(catalog).fit(healthy)
        session = AnnotationSession(learner, hl, featurize, lambda c, r: r.label)
        answers = session.run(healthy[1:3], n_queries=10)
        assert len(answers) == 2

    def test_negative_budget(self, setup):
        catalog, _, healthy, anomalous = setup
        hl = MetricHighlighter(catalog).fit(healthy)
        session = AnnotationSession(None, hl, None, None)
        with pytest.raises(ValueError, match="n_queries"):
            session.run([], n_queries=-1)
