"""Tests for the anomaly-detection wrapper."""

import numpy as np
import pytest

from repro.core.detection import AnomalyDetector
from repro.mlcore.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = np.vstack(
        [
            rng.normal(0, 0.6, (60, 3)),   # healthy
            rng.normal(4, 0.6, (30, 3)),   # membw
            rng.normal(-4, 0.6, (30, 3)),  # memleak
        ]
    )
    y = np.array(["healthy"] * 60 + ["membw"] * 30 + ["memleak"] * 30)
    model = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
    return model, X, y


class TestConstruction:
    def test_requires_fitted_model(self):
        with pytest.raises(ValueError, match="fitted"):
            AnomalyDetector(RandomForestClassifier())

    def test_requires_healthy_class(self, fitted):
        model, X, y = fitted
        with pytest.raises(ValueError, match="healthy"):
            AnomalyDetector(model, healthy_label="nominal")

    def test_threshold_validated(self, fitted):
        model, X, y = fitted
        with pytest.raises(ValueError, match="threshold"):
            AnomalyDetector(model, threshold=1.5)


class TestScoring:
    def test_scores_are_probabilities(self, fitted):
        model, X, y = fitted
        scores = AnomalyDetector(model).score(X)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_anomalous_scores_higher(self, fitted):
        model, X, y = fitted
        scores = AnomalyDetector(model).score(X)
        assert scores[y != "healthy"].mean() > scores[y == "healthy"].mean()

    def test_detect_verdicts(self, fitted):
        model, X, y = fitted
        results = AnomalyDetector(model, threshold=0.5).detect(X)
        pred = np.array([r.anomalous for r in results])
        assert np.mean(pred == (y != "healthy")) > 0.95

    def test_suggested_label_is_an_anomaly_class(self, fitted):
        model, X, y = fitted
        results = AnomalyDetector(model).detect(X[:5])
        for r in results:
            assert r.suggested_label in ("membw", "memleak")

    def test_suggestion_matches_true_anomaly(self, fitted):
        model, X, y = fitted
        results = AnomalyDetector(model).detect(X[60:90])  # membw block
        suggestions = [r.suggested_label for r in results]
        assert suggestions.count("membw") > 25


class TestThresholdTuning:
    def test_tuned_threshold_respects_budget(self, fitted):
        model, X, y = fitted
        detector = AnomalyDetector(model)
        detector.tune_threshold(X, y, max_false_alarm_rate=0.05)
        metrics = detector.evaluate(X, y)
        assert metrics["false_alarm_rate"] <= 0.05 + 1e-9
        assert metrics["detection_rate"] > 0.9

    def test_tuning_without_healthy_rejected(self, fitted):
        model, X, y = fitted
        detector = AnomalyDetector(model)
        mask = y != "healthy"
        with pytest.raises(ValueError, match="no healthy"):
            detector.tune_threshold(X[mask], y[mask])

    def test_invalid_budget(self, fitted):
        model, X, y = fitted
        with pytest.raises(ValueError, match="max_false_alarm_rate"):
            AnomalyDetector(model).tune_threshold(X, y, max_false_alarm_rate=1.0)


class TestEvaluate:
    def test_metric_keys_and_ranges(self, fitted):
        model, X, y = fitted
        metrics = AnomalyDetector(model).evaluate(X, y)
        for key in ("detection_rate", "false_alarm_rate", "precision", "accuracy"):
            assert 0.0 <= metrics[key] <= 1.0

    def test_perfect_on_separated_data(self, fitted):
        model, X, y = fitted
        metrics = AnomalyDetector(model, threshold=0.5).evaluate(X, y)
        assert metrics["accuracy"] > 0.95
