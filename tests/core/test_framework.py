"""End-to-end tests for the ALBADross framework."""

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import ALBADross, Diagnosis, build_model, table4_grid
from repro.datasets.generate import generate_runs


@pytest.fixture(scope="module")
def campaign(tiny_config):
    """Runs partitioned into seed / pool / test the way the paper does."""
    runs = generate_runs(tiny_config, rng=0)
    rng = np.random.default_rng(1)
    seed_runs, pool_runs, test_runs = [], [], []
    seen_pairs = set()
    order = rng.permutation(len(runs))
    for i in order:
        run = runs[i]
        key = (run.app, run.label)
        if run.label != "healthy" and key not in seen_pairs:
            seen_pairs.add(key)
            seed_runs.append(run)
        elif rng.random() < 0.35:
            test_runs.append(run)
        else:
            pool_runs.append(run)
    return seed_runs, pool_runs, test_runs


@pytest.fixture(scope="module")
def trained(tiny_config, campaign):
    seed_runs, pool_runs, test_runs = campaign
    cfg = FrameworkConfig(
        n_features=60,
        model="random_forest",
        model_params={"n_estimators": 10},
        max_queries=12,
        random_state=0,
    )
    fw = ALBADross(tiny_config.catalog, cfg)
    fw.fit_features(seed_runs + pool_runs)
    fw.fit_initial(seed_runs, [r.label for r in seed_runs])
    result = fw.learn(
        pool_runs,
        [r.label for r in pool_runs],
        test_runs,
        [r.label for r in test_runs],
    )
    return fw, result, test_runs


class TestBuildModel:
    def test_all_families_instantiable(self):
        for name in ("random_forest", "lgbm", "logistic_regression", "mlp"):
            model = build_model(name, {}, random_state=0)
            assert hasattr(model, "fit")

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("svm", {})


class TestTable4Grid:
    def test_grids_match_paper(self):
        rf = table4_grid("random_forest")
        assert rf["n_estimators"] == [8, 10, 20, 100, 200]
        assert rf["max_depth"] == [None, 4, 8, 10, 20]
        lgbm = table4_grid("lgbm")
        assert lgbm["num_leaves"] == [2, 8, 31, 128]
        lr = table4_grid("logistic_regression")
        assert lr["C"] == [0.001, 0.01, 0.1, 1.0, 10.0]
        mlp = table4_grid("mlp")
        assert (50, 100, 50) in mlp["hidden_layer_sizes"]

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown model"):
            table4_grid("svm")


class TestLifecycle:
    def test_fit_order_enforced(self, tiny_config, campaign):
        seed_runs, pool_runs, test_runs = campaign
        fw = ALBADross(tiny_config.catalog, FrameworkConfig(n_features=20))
        with pytest.raises(RuntimeError, match="fit_features"):
            fw.fit_initial(seed_runs, [r.label for r in seed_runs])
        with pytest.raises(RuntimeError, match="fit_initial"):
            fw.fit_features(seed_runs).learn(
                pool_runs, [r.label for r in pool_runs],
                test_runs, [r.label for r in test_runs],
            )

    def test_seed_label_mismatch(self, tiny_config, campaign):
        seed_runs, _, _ = campaign
        fw = ALBADross(tiny_config.catalog, FrameworkConfig(n_features=20))
        fw.fit_features(seed_runs)
        with pytest.raises(ValueError, match="mismatch"):
            fw.fit_initial(seed_runs, ["healthy"])

    def test_learn_improves_or_holds_f1(self, trained):
        _, result, _ = trained
        assert result.final_f1 >= result.initial_f1 - 0.05

    def test_learn_respects_budget(self, trained):
        _, result, _ = trained
        assert result.oracle.n_queries <= 12

    def test_diagnose_returns_confident_labels(self, trained):
        fw, _, test_runs = trained
        diagnoses = fw.diagnose(test_runs[:5])
        assert len(diagnoses) == 5
        for d in diagnoses:
            assert isinstance(d, Diagnosis)
            assert 0.0 <= d.confidence <= 1.0
            assert isinstance(d.label, str)

    def test_diagnose_untrained_raises(self, tiny_config):
        fw = ALBADross(tiny_config.catalog)
        with pytest.raises(RuntimeError, match="not trained"):
            fw.diagnose([])

    def test_final_model_includes_queried_classes(self, trained):
        fw, result, _ = trained
        if any(lbl == "healthy" for lbl in result.queried_labels):
            assert "healthy" in fw.model.classes_


class TestTune:
    def test_tune_picks_from_grid_and_updates_config(self, tiny_config, campaign):
        seed_runs, pool_runs, _ = campaign
        fw = ALBADross(
            tiny_config.catalog,
            FrameworkConfig(n_features=30, model="logistic_regression"),
        )
        corpus = seed_runs + pool_runs
        fw.fit_features(corpus)
        best = fw.tune(corpus[:40], [r.label for r in corpus[:40]], cv=3)
        assert best["C"] in table4_grid("logistic_regression")["C"]
        assert fw.config.model_params == best
