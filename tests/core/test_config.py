"""Tests for FrameworkConfig and model defaults."""

import pytest

from repro.core.config import MODEL_FAMILIES, FrameworkConfig, default_model_params


class TestDefaults:
    def test_all_families_have_defaults(self):
        for model in MODEL_FAMILIES:
            params = default_model_params(model)
            assert isinstance(params, dict) and params

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            default_model_params("svm")

    def test_paper_table4_starred_rf(self):
        params = default_model_params("random_forest")
        assert params["max_depth"] == 8
        assert params["criterion"] == "entropy"

    def test_paper_table4_starred_lr(self):
        assert default_model_params("logistic_regression")["penalty"] == "l1"


class TestValidation:
    def test_valid_default(self):
        cfg = FrameworkConfig()
        assert cfg.model == "random_forest"

    def test_bad_feature_method(self):
        with pytest.raises(ValueError, match="feature_method"):
            FrameworkConfig(feature_method="pca")

    def test_bad_model(self):
        with pytest.raises(ValueError, match="model"):
            FrameworkConfig(model="svm")

    def test_bad_strategy(self):
        with pytest.raises(ValueError, match="query_strategy"):
            FrameworkConfig(query_strategy="committee")

    def test_bad_n_features(self):
        with pytest.raises(ValueError, match="n_features"):
            FrameworkConfig(n_features=0)

    def test_bad_target(self):
        with pytest.raises(ValueError, match="target_f1"):
            FrameworkConfig(target_f1=1.5)

    def test_bad_max_queries(self):
        with pytest.raises(ValueError, match="max_queries"):
            FrameworkConfig(max_queries=-1)


class TestResolvedParams:
    def test_overrides_merge_over_defaults(self):
        cfg = FrameworkConfig(model="random_forest", model_params={"n_estimators": 7})
        params = cfg.resolved_model_params()
        assert params["n_estimators"] == 7
        assert params["criterion"] == "entropy"  # default preserved
