"""Tests for framework save/load."""

import pickle

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import ALBADross
from repro.core.persistence import FORMAT_VERSION, load_framework, save_framework
from repro.datasets.generate import generate_runs


@pytest.fixture(scope="module")
def small_framework(tiny_config):
    runs = generate_runs(tiny_config, rng=0)
    seed, pool = runs[: len(runs) // 2], runs[len(runs) // 2 :]
    fw = ALBADross(
        tiny_config.catalog,
        FrameworkConfig(n_features=30, model_params={"n_estimators": 5}),
    )
    fw.fit_features(runs)
    fw.fit_initial(seed, [r.label for r in seed])
    return fw, pool


class TestSaveLoad:
    def test_roundtrip_predictions_identical(self, small_framework, tmp_path):
        fw, pool = small_framework
        path = save_framework(fw, tmp_path / "model.pkl")
        restored = load_framework(path)
        original = [d.label for d in fw.diagnose(pool[:5])]
        loaded = [d.label for d in restored.diagnose(pool[:5])]
        assert original == loaded

    def test_config_survives(self, small_framework, tmp_path):
        fw, _ = small_framework
        path = save_framework(fw, tmp_path / "model.pkl")
        assert load_framework(path).config == fw.config

    def test_untrained_rejected(self, tiny_config, tmp_path):
        fw = ALBADross(tiny_config.catalog)
        with pytest.raises(ValueError, match="untrained"):
            save_framework(fw, tmp_path / "x.pkl")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with path.open("wb") as fh:
            pickle.dump({"hello": 1}, fh)
        with pytest.raises(ValueError, match="not a saved"):
            load_framework(path)

    def test_wrong_version_rejected(self, small_framework, tmp_path):
        fw, _ = small_framework
        path = tmp_path / "old.pkl"
        with path.open("wb") as fh:
            pickle.dump(
                {"format_version": FORMAT_VERSION + 1, "framework": fw}, fh
            )
        with pytest.raises(ValueError, match="format version"):
            load_framework(path)

    def test_non_framework_payload_rejected(self, tmp_path):
        path = tmp_path / "notfw.pkl"
        with path.open("wb") as fh:
            pickle.dump(
                {"format_version": FORMAT_VERSION, "framework": 42}, fh
            )
        with pytest.raises(ValueError, match="ALBADross instance"):
            load_framework(path)
