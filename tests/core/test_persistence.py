"""Tests for framework save/load."""

import pickle

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import ALBADross
from repro.core.persistence import FORMAT_VERSION, load_framework, save_framework
from repro.datasets.generate import generate_runs


@pytest.fixture(scope="module")
def small_framework(tiny_config):
    runs = generate_runs(tiny_config, rng=0)
    seed, pool = runs[: len(runs) // 2], runs[len(runs) // 2 :]
    fw = ALBADross(
        tiny_config.catalog,
        FrameworkConfig(n_features=30, model_params={"n_estimators": 5}),
    )
    fw.fit_features(runs)
    fw.fit_initial(seed, [r.label for r in seed])
    return fw, pool


class TestSaveLoad:
    def test_roundtrip_predictions_identical(self, small_framework, tmp_path):
        fw, pool = small_framework
        path = save_framework(fw, tmp_path / "model.pkl")
        restored = load_framework(path)
        original = [d.label for d in fw.diagnose(pool[:5])]
        loaded = [d.label for d in restored.diagnose(pool[:5])]
        assert original == loaded

    def test_config_survives(self, small_framework, tmp_path):
        fw, _ = small_framework
        path = save_framework(fw, tmp_path / "model.pkl")
        assert load_framework(path).config == fw.config

    def test_untrained_rejected(self, tiny_config, tmp_path):
        fw = ALBADross(tiny_config.catalog)
        with pytest.raises(ValueError, match="untrained"):
            save_framework(fw, tmp_path / "x.pkl")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with path.open("wb") as fh:
            pickle.dump({"hello": 1}, fh)
        with pytest.raises(ValueError, match="not a saved"):
            load_framework(path)

    def test_wrong_version_rejected(self, small_framework, tmp_path):
        fw, _ = small_framework
        path = tmp_path / "old.pkl"
        with path.open("wb") as fh:
            pickle.dump(
                {"format_version": FORMAT_VERSION + 1, "framework": fw}, fh
            )
        with pytest.raises(ValueError, match="format version"):
            load_framework(path)

    def test_newer_version_roundtrip_fails_with_upgrade_hint(
        self, small_framework, tmp_path, monkeypatch
    ):
        """A payload saved by a future format must fail clearly, not load."""
        import repro.core.persistence as persistence

        fw, _ = small_framework
        path = tmp_path / "future.pkl"
        monkeypatch.setattr(persistence, "FORMAT_VERSION", FORMAT_VERSION + 3)
        save_framework(fw, path)  # a "future" writer produced this file
        monkeypatch.setattr(persistence, "FORMAT_VERSION", FORMAT_VERSION)
        with pytest.raises(ValueError, match="newer than this package"):
            load_framework(path)

    def test_older_version_still_gets_generic_error(self, small_framework, tmp_path):
        fw, _ = small_framework
        path = tmp_path / "ancient.pkl"
        with path.open("wb") as fh:
            pickle.dump({"format_version": 0, "framework": fw}, fh)
        with pytest.raises(ValueError, match="expected"):
            load_framework(path)

    def test_non_framework_payload_rejected(self, tmp_path):
        path = tmp_path / "notfw.pkl"
        with path.open("wb") as fh:
            pickle.dump(
                {"format_version": FORMAT_VERSION, "framework": 42}, fh
            )
        with pytest.raises(ValueError, match="ALBADross instance"):
            load_framework(path)


class TestManifestHelpers:
    def test_manifest_is_json_serializable(self, small_framework):
        import json

        from repro.core.persistence import build_manifest

        fw, _ = small_framework
        manifest = json.loads(json.dumps(build_manifest(fw)))
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["config"]["n_features"] == 30
        assert manifest["n_features"] == 30
        assert "healthy" in manifest["classes"]

    def test_manifest_requires_trained_framework(self, tiny_config):
        from repro.core.persistence import build_manifest

        with pytest.raises(ValueError, match="untrained"):
            build_manifest(ALBADross(tiny_config.catalog))

    def test_train_fingerprint_stable_and_sensitive(self, small_framework):
        from repro.core.persistence import train_fingerprint

        fw, _ = small_framework
        assert train_fingerprint(fw) == train_fingerprint(fw)
        assert train_fingerprint(ALBADross(fw.catalog)) == "untrained"

    def test_run_fingerprint_distinguishes_runs(self, tiny_config):
        from repro.core.persistence import run_fingerprint
        from repro.datasets.generate import generate_runs

        a, b = generate_runs(tiny_config, rng=0)[:2]
        assert run_fingerprint(a) == run_fingerprint(a)
        assert run_fingerprint(a) != run_fingerprint(b)
