"""Tests for the deployment drift monitor."""

import numpy as np
import pytest

from repro.core.monitor import DriftMonitor, DriftReport
from repro.mlcore.forest import RandomForestClassifier


def _reference(n=300, m=10, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, m))


class TestValidation:
    def test_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            DriftMonitor(alpha=0.0)

    def test_bad_threshold(self):
        with pytest.raises(ValueError, match="drift_fraction"):
            DriftMonitor(drift_fraction_threshold=0.0)

    def test_check_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            DriftMonitor().check(_reference(20))

    def test_fit_needs_samples(self):
        with pytest.raises(ValueError, match="at least 8"):
            DriftMonitor().fit(np.ones((3, 4)))

    def test_window_feature_mismatch(self):
        monitor = DriftMonitor().fit(_reference())
        with pytest.raises(ValueError, match="window"):
            monitor.check(np.ones((20, 3)))

    def test_window_too_small(self):
        monitor = DriftMonitor().fit(_reference())
        with pytest.raises(ValueError, match="too small"):
            monitor.check(np.ones((4, 10)))


class TestFeatureDrift:
    def test_no_drift_on_same_distribution(self):
        monitor = DriftMonitor().fit(_reference(seed=0))
        report = monitor.check(_reference(n=120, seed=99))
        assert not report.drifted
        assert report.feature_drift_fraction < 0.25

    def test_detects_mean_shift(self):
        monitor = DriftMonitor().fit(_reference())
        shifted = _reference(n=120, seed=5) + 2.0
        report = monitor.check(shifted)
        assert report.drifted
        assert report.feature_drift_fraction > 0.8

    def test_detects_partial_shift(self):
        monitor = DriftMonitor(drift_fraction_threshold=0.2).fit(_reference())
        window = _reference(n=150, seed=7)
        window[:, :4] += 3.0  # 40% of features shift
        report = monitor.check(window)
        assert report.drifted
        assert 0.2 < report.feature_drift_fraction < 0.7

    def test_reference_subsampling(self):
        monitor = DriftMonitor(max_reference=64).fit(_reference(n=1000))
        assert len(monitor.reference_) == 64


class TestConfidenceDrift:
    @pytest.fixture(scope="class")
    def fitted_model(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.5, (80, 4)), rng.normal(2, 0.5, (80, 4))])
        y = np.array([0] * 80 + [1] * 80)
        model = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        return model, X

    def test_ood_window_drops_confidence(self, fitted_model):
        model, X = fitted_model
        monitor = DriftMonitor(model=model).fit(X)
        rng = np.random.default_rng(1)
        ood = rng.normal(0, 0.3, size=(60, 4))  # between the clusters
        report = monitor.check(ood)
        assert report.confidence_drop > 0.1
        assert report.drifted

    def test_in_distribution_confidence_stable(self, fitted_model):
        model, X = fitted_model
        monitor = DriftMonitor(model=model).fit(X)
        rng = np.random.default_rng(2)
        window = np.vstack(
            [rng.normal(-2, 0.5, (30, 4)), rng.normal(2, 0.5, (30, 4))]
        )
        report = monitor.check(window)
        assert abs(report.confidence_drop) < 0.1


class TestReport:
    def test_summary_strings(self):
        ok = DriftReport(False, 0.05, 0.1, 0.0, 50)
        bad = DriftReport(True, 0.6, 0.4, 0.2, 50)
        assert "ok" in ok.summary()
        assert "DRIFT" in bad.summary()
        assert "60%" in bad.summary()
